package plus

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Client is a thin HTTP client for a PLUS server.
type Client struct {
	base  string
	http  *http.Client
	token string
}

// NewClient targets a server base URL such as "http://localhost:7337".
func NewClient(base string) *Client {
	return &Client{base: base, http: &http.Client{}}
}

// BaseURL reports the server base URL the client targets, so callers can
// hand the same endpoint to the v2 SDK (pkg/plusclient).
func (c *Client) BaseURL() string { return c.base }

// SetToken attaches a signed session token (the X-Plus-Session header)
// to every request — how the v1 surface is driven against an
// auth-required server.
func (c *Client) SetToken(token string) { c.token = token }

// SetHTTPClient substitutes the transport — how plusctl verifies an
// https server through a custom CA bundle (-tls-ca). nil is ignored.
func (c *Client) SetHTTPClient(h *http.Client) {
	if h != nil {
		c.http = h
	}
}

// HTTPClient reports the transport in use, so callers can hand the same
// one (and its TLS trust) to the v2 SDK.
func (c *Client) HTTPClient() *http.Client { return c.http }

// Token reports the attached session token ("" when none).
func (c *Client) Token() string { return c.token }

// doRequest runs one request with the client's auth header attached.
func (c *Client) doRequest(method, path, contentType string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("plus client: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.token != "" {
		req.Header.Set(HeaderSession, c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("plus client: %w", err)
	}
	return resp, nil
}

func (c *Client) post(path string, v interface{}) error {
	return c.PostJSON(path, v, nil)
}

func (c *Client) get(path string, out interface{}) error {
	resp, err := c.doRequest(http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("plus client: decode: %w", err)
	}
	return nil
}

// GetJSON fetches path and decodes the JSON response into out. Like
// PostJSON it exists for extension callers (plusctl top polls
// /v2/metrics?format=json through it) that want the client's transport,
// auth header and error conventions.
func (c *Client) GetJSON(path string, out interface{}) error {
	return c.get(path, out)
}

// PostJSON posts in as JSON to path and, when out is non-nil, decodes the
// JSON response into it. It lets extension subsystems (e.g. PLUSQL) reuse
// the client's transport and error conventions for their own endpoints.
func (c *Client) PostJSON(path string, in, out interface{}) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("plus client: encode: %w", err)
	}
	resp, err := c.doRequest(http.MethodPost, path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("plus client: decode: %w", err)
	}
	return nil
}

func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er errorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return fmt.Errorf("plus client: %s: %s", resp.Status, er.Error)
	}
	return fmt.Errorf("plus client: %s", resp.Status)
}

// PutObject stores an object.
func (c *Client) PutObject(o Object) error { return c.post("/v1/objects", o) }

// PutEdge stores an edge.
func (c *Client) PutEdge(e Edge) error { return c.post("/v1/edges", e) }

// PutSurrogate stores a surrogate spec.
func (c *Client) PutSurrogate(sp SurrogateSpec) error { return c.post("/v1/surrogates", sp) }

// GetObject fetches one object.
func (c *Client) GetObject(id string) (Object, error) {
	var o Object
	err := c.get("/v1/objects/"+url.PathEscape(id), &o)
	return o, err
}

// LineageQuery mirrors the server's query parameters.
type LineageQuery struct {
	Start     string
	Direction string // ancestors | descendants | both
	Depth     int
	Viewer    string
	Mode      string // hide | surrogate
	Label     string // restrict traversal to this edge label
	Kind      string // restrict traversal to data | invocation
}

// Lineage runs a lineage query.
func (c *Client) Lineage(q LineageQuery) (*LineageResponse, error) {
	params := url.Values{}
	params.Set("start", q.Start)
	if q.Direction != "" {
		params.Set("direction", q.Direction)
	}
	if q.Depth > 0 {
		params.Set("depth", strconv.Itoa(q.Depth))
	}
	if q.Viewer != "" {
		params.Set("viewer", q.Viewer)
	}
	if q.Mode != "" {
		params.Set("mode", q.Mode)
	}
	if q.Label != "" {
		params.Set("label", q.Label)
	}
	if q.Kind != "" {
		params.Set("kind", q.Kind)
	}
	var resp LineageResponse
	if err := c.get("/v1/lineage?"+params.Encode(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches store statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var s StatsResponse
	err := c.get("/v1/stats", &s)
	return s, err
}

// Healthz probes the server's readiness endpoint. Unlike the other
// getters it decodes the body even on a 503, so callers see the
// structured "unavailable" answer (with its revision) rather than a bare
// status error.
func (c *Client) Healthz() (HealthzResponse, error) {
	resp, err := c.doRequest(http.MethodGet, "/v1/healthz", "", nil)
	if err != nil {
		return HealthzResponse{}, err
	}
	defer resp.Body.Close()
	var h HealthzResponse
	if derr := json.NewDecoder(resp.Body).Decode(&h); derr == nil && h.Status != "" {
		return h, nil
	}
	return HealthzResponse{}, fmt.Errorf("plus client: %s", resp.Status)
}

// ExportOPM streams the server's OPM document to w.
func (c *Client) ExportOPM(w io.Writer) error {
	resp, err := c.doRequest(http.MethodGet, "/v1/opm", "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// ImportOPM uploads an OPM document from r.
func (c *Client) ImportOPM(r io.Reader) error {
	resp, err := c.doRequest(http.MethodPost, "/v1/opm", "application/json", r)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return checkStatus(resp)
}

package plus

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/privilege"
)

// v2TestServer wires a MemBackend-backed server with the two-level
// lattice and returns the httptest server plus the backend for direct
// manipulation.
func v2TestServer(t *testing.T) (*httptest.Server, *MemBackend) {
	t.Helper()
	m := NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewServer(NewEngine(m, privilege.TwoLevel())))
	t.Cleanup(srv.Close)
	return srv, m
}

// v2Fixture is the standard test graph as one batch.
func v2Fixture() BatchRequest {
	return BatchRequest{
		Objects: []Object{
			{ID: "src", Kind: Data, Name: "raw feed"},
			{ID: "proc", Kind: Invocation, Name: "secret analytic", Lowest: "Protected", Protect: "surrogate"},
			{ID: "out", Kind: Data, Name: "derived table"},
			{ID: "report", Kind: Data, Name: "final report"},
		},
		Edges: []Edge{
			{From: "src", To: "proc", Label: "input-to"},
			{From: "proc", To: "out", Label: "generated"},
			{From: "out", To: "report", Label: "input-to"},
		},
		Surrogates: []SurrogateSpec{
			{ForID: "proc", ID: "proc'", Name: "an analytic", InfoScore: 0.4},
		},
	}
}

// doJSON runs one request and decodes the JSON answer into out (when
// non-nil), returning the response status.
func doJSON(t *testing.T, method, url string, headers map[string]string, body, out interface{}) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func ingestV2Fixture(t *testing.T, base string) BatchResponse {
	t.Helper()
	var br BatchResponse
	if st := doJSON(t, http.MethodPost, base+"/v2/batch", nil, v2Fixture(), &br); st != http.StatusOK {
		t.Fatalf("batch ingest status = %d", st)
	}
	return br
}

func TestV2BatchIngestAndCursor(t *testing.T) {
	srv, m := v2TestServer(t)
	br := ingestV2Fixture(t, srv.URL)
	if br.Revision != 8 || br.Objects != 4 || br.Edges != 3 || br.Surrogates != 1 {
		t.Errorf("batch response = %+v", br)
	}
	cur, err := DecodeCursor(br.Cursor)
	if err != nil {
		t.Fatalf("batch cursor: %v", err)
	}
	if cur.Epoch != m.Epoch() || cur.Rev != m.Revision() {
		t.Errorf("cursor = %+v, want epoch %q rev %d", cur, m.Epoch(), m.Revision())
	}
}

func TestV2BatchIsAtomic(t *testing.T) {
	srv, m := v2TestServer(t)
	bad := BatchRequest{
		Objects: []Object{{ID: "a", Kind: Data}},
		Edges:   []Edge{{From: "a", To: "ghost"}},
	}
	var apiErr APIError
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/batch", nil, bad, &apiErr); st != http.StatusBadRequest {
		t.Fatalf("bad batch status = %d", st)
	}
	if apiErr.Code != CodeBadRequest || apiErr.Message == "" {
		t.Errorf("bad batch error = %+v", apiErr)
	}
	if m.Revision() != 0 || m.NumObjects() != 0 {
		t.Errorf("failed batch left partial state: rev=%d objects=%d", m.Revision(), m.NumObjects())
	}
}

func TestV2PrincipalResolution(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)
	lineageURL := srv.URL + "/v2/lineage?start=report"

	// Header viewer: Protected sees the original node.
	var resp LineageResponse
	if st := doJSON(t, http.MethodGet, lineageURL, map[string]string{HeaderViewer: "Protected"}, nil, &resp); st != http.StatusOK {
		t.Fatalf("header viewer status = %d", st)
	}
	if resp.Viewer != "Protected" {
		t.Errorf("viewer echoed as %q", resp.Viewer)
	}
	found := false
	for _, n := range resp.Nodes {
		if n.ID == "proc" {
			found = true
		}
	}
	if !found {
		t.Error("Protected viewer did not get the original node")
	}

	// No principal: Public, surrogate served instead.
	resp = LineageResponse{}
	if st := doJSON(t, http.MethodGet, lineageURL, nil, nil, &resp); st != http.StatusOK {
		t.Fatalf("no-principal status = %d", st)
	}
	for _, n := range resp.Nodes {
		if n.ID == "proc" {
			t.Error("Public viewer saw the protected node")
		}
	}

	// Unknown viewer: structured 400, never a Public fallback.
	var apiErr APIError
	if st := doJSON(t, http.MethodGet, lineageURL, map[string]string{HeaderViewer: "Bogus"}, nil, &apiErr); st != http.StatusBadRequest {
		t.Fatalf("unknown viewer status = %d", st)
	}
	if apiErr.Code != CodeUnknownViewer {
		t.Errorf("unknown viewer code = %q", apiErr.Code)
	}

	// The viewer query parameter is a v1 idiom; v2 rejects it.
	apiErr = APIError{}
	if st := doJSON(t, http.MethodGet, lineageURL+"&viewer=Protected", nil, nil, &apiErr); st != http.StatusBadRequest {
		t.Fatalf("query-param viewer status = %d", st)
	}
	if apiErr.Code != CodeBadRequest {
		t.Errorf("query-param viewer code = %q", apiErr.Code)
	}
}

func TestV2Sessions(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	// Unknown viewer at session creation is a structured 400.
	var apiErr APIError
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/sessions", nil, SessionRequest{Viewer: "Nope"}, &apiErr); st != http.StatusBadRequest {
		t.Fatalf("bad session status = %d", st)
	}
	if apiErr.Code != CodeUnknownViewer {
		t.Errorf("bad session code = %q", apiErr.Code)
	}

	var sess SessionResponse
	if st := doJSON(t, http.MethodPost, srv.URL+"/v2/sessions", nil, SessionRequest{Viewer: "Protected"}, &sess); st != http.StatusCreated {
		t.Fatalf("session create status = %d", st)
	}
	if sess.Token == "" || sess.Viewer != "Protected" {
		t.Fatalf("session = %+v", sess)
	}

	// The session token resolves the principal.
	var resp LineageResponse
	st := doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=report",
		map[string]string{HeaderSession: sess.Token}, nil, &resp)
	if st != http.StatusOK || resp.Viewer != "Protected" {
		t.Errorf("session lineage status=%d viewer=%q", st, resp.Viewer)
	}

	// Unknown token: 401. Conflicting header: 400.
	apiErr = APIError{}
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=report",
		map[string]string{HeaderSession: "feedfacefeedface"}, nil, &apiErr); st != http.StatusUnauthorized {
		t.Errorf("unknown session status = %d", st)
	}
	apiErr = APIError{}
	st = doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=report",
		map[string]string{HeaderSession: sess.Token, HeaderViewer: "Public"}, nil, &apiErr)
	if st != http.StatusBadRequest || apiErr.Code != CodeViewerConflict {
		t.Errorf("conflicting viewer status=%d code=%q", st, apiErr.Code)
	}
}

func TestV2ObjectFetchIsPrincipalScoped(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	var apiErr APIError
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/objects/proc", nil, nil, &apiErr); st != http.StatusForbidden {
		t.Fatalf("public fetch of protected object status = %d", st)
	}
	if apiErr.Code != CodeForbidden {
		t.Errorf("code = %q", apiErr.Code)
	}

	var o Object
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/objects/proc",
		map[string]string{HeaderViewer: "Protected"}, nil, &o); st != http.StatusOK {
		t.Fatalf("privileged fetch status = %d", st)
	}
	if o.Name != "secret analytic" {
		t.Errorf("object = %+v", o)
	}

	apiErr = APIError{}
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/objects/ghost", nil, nil, &apiErr); st != http.StatusNotFound {
		t.Errorf("missing object status = %d", st)
	}
}

// readEvents drains one /v2/changes response body into events.
func readEvents(t *testing.T, rd io.Reader) []ChangeEvent {
	t.Helper()
	var out []ChangeEvent
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev ChangeEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func getChanges(t *testing.T, base, cursor string, extra string) (int, []ChangeEvent, *APIError) {
	t.Helper()
	url := base + "/v2/changes?"
	if cursor != "" {
		url += "cursor=" + cursor + "&"
	}
	url += extra
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr APIError
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return resp.StatusCode, nil, &apiErr
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("changes content type = %q", ct)
	}
	return resp.StatusCode, readEvents(t, resp.Body), nil
}

func TestV2ChangesFromBeginningAndResume(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	st, evs, _ := getChanges(t, srv.URL, "", "")
	if st != http.StatusOK {
		t.Fatalf("changes status = %d", st)
	}
	if len(evs) != 9 { // 8 changes + sync
		t.Fatalf("got %d events, want 9", len(evs))
	}
	for i, ev := range evs[:8] {
		if ev.Type != "change" || ev.Rev != uint64(i+1) {
			t.Errorf("event %d = %+v", i, ev)
		}
	}
	if evs[0].Kind != "object" || evs[0].Object == nil {
		t.Errorf("first event = %+v", evs[0])
	}
	last := evs[8]
	if last.Type != "sync" || last.Rev != 8 {
		t.Errorf("final event = %+v", last)
	}

	// Resume from the cursor of the 5th change: only later changes flow.
	st, evs2, _ := getChanges(t, srv.URL, evs[4].Cursor, "")
	if st != http.StatusOK {
		t.Fatalf("resume status = %d", st)
	}
	if len(evs2) != 4 { // changes 6,7,8 + sync
		t.Fatalf("resumed %d events, want 4", len(evs2))
	}
	if evs2[0].Rev != 6 {
		t.Errorf("resume started at rev %d, want 6", evs2[0].Rev)
	}

	// limit stops the stream early, without a sync marker.
	st, evs3, _ := getChanges(t, srv.URL, "", "limit=3")
	if st != http.StatusOK || len(evs3) != 3 || evs3[2].Rev != 3 {
		t.Errorf("limited stream: status=%d events=%+v", st, evs3)
	}
}

func TestV2ChangesBadAndForeignCursors(t *testing.T) {
	srv, m := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	st, _, apiErr := getChanges(t, srv.URL, "garbage", "")
	if st != http.StatusBadRequest || apiErr.Code != CodeBadCursor {
		t.Errorf("garbage cursor: status=%d err=%+v", st, apiErr)
	}

	// A cursor from another epoch (another store life) is a typed 410
	// carrying the resync hint.
	foreign := Cursor{Epoch: "0123456789abcdef", Rev: 2}.Encode()
	st, _, apiErr = getChanges(t, srv.URL, foreign, "")
	if st != http.StatusGone || apiErr.Code != CodeTooFarBehind {
		t.Fatalf("foreign epoch: status=%d err=%+v", st, apiErr)
	}
	if apiErr.ResyncURL != "/v2/snapshot" {
		t.Errorf("resync URL = %q", apiErr.ResyncURL)
	}
	rc, err := DecodeCursor(apiErr.ResyncCursor)
	if err != nil || rc.Epoch != m.Epoch() || rc.Rev != m.Revision() {
		t.Errorf("resync cursor = %+v (err %v)", rc, err)
	}

	// A future revision in the right epoch also demands a resync.
	future := Cursor{Epoch: m.Epoch(), Rev: m.Revision() + 100}.Encode()
	if st, _, apiErr = getChanges(t, srv.URL, future, ""); st != http.StatusGone || apiErr.Code != CodeTooFarBehind {
		t.Errorf("future cursor: status=%d err=%+v", st, apiErr)
	}
}

func TestV2ChangesHorizonYields410(t *testing.T) {
	srv, m := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)
	// Shrink the retained window so revision 0 has aged out.
	m.SetChangeHorizon(1)

	st, _, apiErr := getChanges(t, srv.URL, "", "")
	if st != http.StatusGone {
		t.Fatalf("status = %d, want 410", st)
	}
	if apiErr.Code != CodeTooFarBehind || apiErr.ResyncCursor == "" {
		t.Errorf("error = %+v", apiErr)
	}
}

func TestV2ChangesLongPollDeliversNewWrites(t *testing.T) {
	srv, m := v2TestServer(t)
	br := ingestV2Fixture(t, srv.URL)

	type result struct {
		evs []ChangeEvent
		err error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/v2/changes?cursor=" + br.Cursor + "&wait=5s&limit=1")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		done <- result{evs: readEvents(t, resp.Body)}
	}()

	// Give the handler a moment to catch up and park, then write.
	time.Sleep(100 * time.Millisecond)
	if err := m.PutObject(Object{ID: "late", Kind: Data, Name: "late arrival"}); err != nil {
		t.Fatal(err)
	}

	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		var change *ChangeEvent
		for i := range r.evs {
			if r.evs[i].Type == "change" {
				change = &r.evs[i]
			}
		}
		if change == nil || change.Object == nil || change.Object.ID != "late" {
			t.Errorf("long-poll events = %+v, want the late object", r.evs)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll did not deliver the write")
	}
}

func TestV2SnapshotResync(t *testing.T) {
	srv, m := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	var snap SnapshotResponse
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/snapshot", nil, nil, &snap); st != http.StatusOK {
		t.Fatalf("snapshot status = %d", st)
	}
	if snap.Revision != m.Revision() || snap.Epoch != m.Epoch() {
		t.Errorf("snapshot header = %+v", snap)
	}
	if len(snap.Objects) != 4 || len(snap.Edges) != 3 || len(snap.Surrogates) != 1 {
		t.Errorf("snapshot contents: %d objects %d edges %d surrogates",
			len(snap.Objects), len(snap.Edges), len(snap.Surrogates))
	}
	if len(snap.Lattice) == 0 {
		t.Error("snapshot missing the lattice")
	}
	// The snapshot's cursor resumes the feed with nothing missed.
	if err := m.PutObject(Object{ID: "after", Kind: Data}); err != nil {
		t.Fatal(err)
	}
	st, evs, _ := getChanges(t, srv.URL, snap.Cursor, "")
	if st != http.StatusOK {
		t.Fatalf("resume from snapshot cursor: %d", st)
	}
	if len(evs) != 2 || evs[0].Object == nil || evs[0].Object.ID != "after" {
		t.Errorf("resume events = %+v", evs)
	}
}

// TestV1V2LineageParity asks the same lineage question through both
// surfaces and requires identical protected answers.
func TestV1V2LineageParity(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	for _, viewer := range []string{"Public", "Protected"} {
		var v1, v2 LineageResponse
		if st := doJSON(t, http.MethodGet, srv.URL+"/v1/lineage?start=report&viewer="+viewer, nil, nil, &v1); st != http.StatusOK {
			t.Fatalf("v1 status = %d", st)
		}
		if st := doJSON(t, http.MethodGet, srv.URL+"/v2/lineage?start=report",
			map[string]string{HeaderViewer: viewer}, nil, &v2); st != http.StatusOK {
			t.Fatalf("v2 status = %d", st)
		}
		// Timings differ run to run; everything semantic must agree.
		v1.Timing, v2.Timing = LineageTiming{}, LineageTiming{}
		a, _ := json.Marshal(v1)
		b, _ := json.Marshal(v2)
		if !bytes.Equal(a, b) {
			t.Errorf("viewer %s: v1 %s != v2 %s", viewer, a, b)
		}
	}
}

// TestV2ChangesAcrossLogRestart is the durability conformance case: a
// cursor taken before a LogBackend restart resumes after it with no gaps
// and no duplicates.
func TestV2ChangesAcrossLogRestart(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/plus.log"
	s1, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(NewServer(NewEngine(s1, privilege.TwoLevel())))
	br := ingestV2Fixture(t, srv1.URL)

	// Consume part of the feed pre-restart.
	st, evs, _ := getChanges(t, srv1.URL, "", "limit=5")
	if st != http.StatusOK || len(evs) != 5 {
		t.Fatalf("pre-restart: status=%d events=%d", st, len(evs))
	}
	resumeFrom := evs[4].Cursor
	srv1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	srv2 := httptest.NewServer(NewServer(NewEngine(s2, privilege.TwoLevel())))
	defer srv2.Close()

	st, evs2, _ := getChanges(t, srv2.URL, resumeFrom, "")
	if st != http.StatusOK {
		t.Fatalf("post-restart resume status = %d", st)
	}
	var revs []uint64
	for _, ev := range evs2 {
		if ev.Type == "change" {
			revs = append(revs, ev.Rev)
		}
	}
	if len(revs) != 3 {
		t.Fatalf("post-restart changes = %v, want revisions 6..8", revs)
	}
	for i, r := range revs {
		if r != uint64(6+i) {
			t.Errorf("gap or duplicate: revisions %v", revs)
			break
		}
	}
	// The batch cursor (issued pre-restart at the head) resumes to an
	// immediate sync.
	st, evs3, _ := getChanges(t, srv2.URL, br.Cursor, "")
	if st != http.StatusOK || len(evs3) != 1 || evs3[0].Type != "sync" {
		t.Errorf("head cursor resume: status=%d events=%+v", st, evs3)
	}
}

// TestV2ErrorBodiesAreStructured spot-checks that every v2 failure mode
// carries a machine-readable code.
func TestV2ErrorBodiesAreStructured(t *testing.T) {
	srv, _ := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)

	cases := []struct {
		method, path string
		body         interface{}
		wantStatus   int
		wantCode     string
	}{
		{http.MethodGet, "/v2/lineage?start=ghost", nil, http.StatusNotFound, CodeNotFound},
		{http.MethodGet, "/v2/lineage?start=report&mode=banana", nil, http.StatusBadRequest, CodeBadRequest},
		{http.MethodGet, "/v2/lineage", nil, http.StatusBadRequest, CodeBadRequest},
		{http.MethodPost, "/v2/batch", "not an object", http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		var apiErr APIError
		st := doJSON(t, tc.method, srv.URL+tc.path, nil, tc.body, &apiErr)
		if st != tc.wantStatus || apiErr.Code != tc.wantCode {
			t.Errorf("%s %s: status=%d code=%q, want %d %q",
				tc.method, tc.path, st, apiErr.Code, tc.wantStatus, tc.wantCode)
		}
		if apiErr.Message == "" {
			t.Errorf("%s %s: empty error message", tc.method, tc.path)
		}
	}
}

// TestV2ClosedBackend maps ErrClosed onto 503 + unavailable.
func TestV2ClosedBackend(t *testing.T) {
	srv, m := v2TestServer(t)
	ingestV2Fixture(t, srv.URL)
	m.Close()

	var apiErr APIError
	if st := doJSON(t, http.MethodGet, srv.URL+"/v2/snapshot", nil, nil, &apiErr); st != http.StatusServiceUnavailable {
		t.Errorf("snapshot on closed backend = %d", st)
	}
	if apiErr.Code != CodeUnavailable {
		t.Errorf("code = %q", apiErr.Code)
	}
	if st, _, apiErr := getChanges(t, srv.URL, "", ""); st != http.StatusServiceUnavailable || apiErr.Code != CodeUnavailable {
		t.Errorf("changes on closed backend: status=%d err=%+v", st, apiErr)
	}
}

package plus

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/privilege"
)

func TestHealthzHandler(t *testing.T) {
	s, _ := openTemp(t)
	putChain(t, s, "a", "b", "c")
	srv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var h HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != 3 || h.Edges != 2 {
		t.Errorf("healthz = %+v, want ok/3/2", h)
	}
	if h.Revision != s.Revision() {
		t.Errorf("healthz revision = %d, want %d", h.Revision, s.Revision())
	}

	// Method discipline.
	post, err := http.Post(srv.URL+"/v1/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST healthz status = %d, want 405", post.StatusCode)
	}

	// A closed backend reports unavailable with 503.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed healthz status = %d, want 503", resp2.StatusCode)
	}
	var h2 HealthzResponse
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if h2.Status != "unavailable" {
		t.Errorf("closed healthz = %+v", h2)
	}
	// The client surfaces the structured unavailable answer, not a bare
	// status error.
	h3, err := NewClient(srv.URL).Healthz()
	if err != nil {
		t.Fatalf("client healthz on closed backend: %v", err)
	}
	if h3.Status != "unavailable" {
		t.Errorf("client healthz = %+v, want unavailable", h3)
	}
}

func TestHealthzClient(t *testing.T) {
	c, s := testServer(t)
	loadFixture(t, c)
	h, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != s.NumObjects() || h.Edges != s.NumEdges() {
		t.Errorf("client healthz = %+v", h)
	}
}

// TestHealthzMemBackend exercises the probe over the volatile backend,
// where Size is 0 but counts and revision still flow.
func TestHealthzMemBackend(t *testing.T) {
	m := NewMemBackend(0)
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewServer(NewEngine(m, privilege.TwoLevel())))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	if err := c.PutObject(Object{ID: "x", Kind: Data, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	h, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != 1 || h.Revision != 1 {
		t.Errorf("mem healthz = %+v", h)
	}
}

package plus

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/graph"
	"repro/internal/privilege"
)

func TestHealthzHandler(t *testing.T) {
	s, _ := openTemp(t)
	putChain(t, s, "a", "b", "c")
	srv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var h HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != 3 || h.Edges != 2 {
		t.Errorf("healthz = %+v, want ok/3/2", h)
	}
	if h.Revision != s.Revision() {
		t.Errorf("healthz revision = %d, want %d", h.Revision, s.Revision())
	}
	// The probe reports the secondary indexes and the intern table. The
	// index is built lazily, so probe it first.
	sn, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := sn.FindByName("obj a"); len(got) != 1 {
		t.Fatalf("FindByName = %v, want [a]", got)
	}
	resp3, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var hIdx HealthzResponse
	if err := json.NewDecoder(resp3.Body).Decode(&hIdx); err != nil {
		t.Fatal(err)
	}
	if hIdx.Index == nil {
		t.Fatal("healthz missing index section on an indexing backend")
	}
	if ix := hIdx.Index; ix.KindEntries != 3 || ix.NameEntries != 3 || ix.Rev != s.Revision() {
		t.Errorf("healthz index = %+v, want 3 kind / 3 name entries at rev %d", ix, s.Revision())
	}
	if hIdx.Index.Hits == 0 {
		t.Error("healthz index reports no hits after an indexed probe")
	}
	if hIdx.Intern == nil || hIdx.Intern.Strings == 0 || hIdx.Intern.Bytes == 0 {
		t.Errorf("healthz intern = %+v, want non-empty table", hIdx.Intern)
	}

	// Method discipline.
	post, err := http.Post(srv.URL+"/v1/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST healthz status = %d, want 405", post.StatusCode)
	}

	// A closed backend reports unavailable with 503.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("closed healthz status = %d, want 503", resp2.StatusCode)
	}
	var h2 HealthzResponse
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if h2.Status != "unavailable" {
		t.Errorf("closed healthz = %+v", h2)
	}
	// The client surfaces the structured unavailable answer, not a bare
	// status error.
	h3, err := NewClient(srv.URL).Healthz()
	if err != nil {
		t.Fatalf("client healthz on closed backend: %v", err)
	}
	if h3.Status != "unavailable" {
		t.Errorf("client healthz = %+v, want unavailable", h3)
	}
}

func TestHealthzClient(t *testing.T) {
	c, s := testServer(t)
	loadFixture(t, c)
	h, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != s.NumObjects() || h.Edges != s.NumEdges() {
		t.Errorf("client healthz = %+v", h)
	}
}

// TestHealthzCacheStats checks the probe surfaces the lineage-cache
// counters of a cache-fronted server: hits, misses and delta-scoped
// eviction activity.
func TestHealthzCacheStats(t *testing.T) {
	s, _ := openTemp(t)
	putChain(t, s, "a", "b", "c")
	ce := NewCachedEngine(NewEngine(s, privilege.TwoLevel()))
	srv := httptest.NewServer(NewCachedServer(ce))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)

	req := Request{Start: "c", Direction: graph.Backward}
	if _, err := ce.Lineage(req); err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Lineage(req); err != nil {
		t.Fatal(err)
	}
	// A write inside the closure evicts the entry; healthz reports it.
	if err := s.PutObject(Object{ID: "a", Kind: Data, Name: "a v2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Lineage(req); err != nil {
		t.Fatal(err)
	}
	h, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.LineageCache == nil {
		t.Fatal("healthz missing lineageCache section on a cached server")
	}
	lc := h.LineageCache
	if lc.Hits != 1 || lc.Misses != 2 || lc.DeltaEvictions != 1 || lc.Entries != 1 {
		t.Errorf("lineage cache stats = %+v, want 1 hit, 2 misses, 1 eviction, 1 entry", lc)
	}
	if h.QueryCache != nil {
		t.Error("queryCache present without the query subsystem attached")
	}

	// An uncached server reports no cache section at all.
	plain := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	t.Cleanup(plain.Close)
	h2, err := NewClient(plain.URL).Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h2.LineageCache != nil {
		t.Error("lineageCache present on an uncached server")
	}
}

// TestHealthzMemBackend exercises the probe over the volatile backend,
// where Size is 0 but counts and revision still flow.
func TestHealthzMemBackend(t *testing.T) {
	m := NewMemBackend(0)
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewServer(NewEngine(m, privilege.TwoLevel())))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	if err := c.PutObject(Object{ID: "x", Kind: Data, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	h, err := c.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Objects != 1 || h.Revision != 1 {
		t.Errorf("mem healthz = %+v", h)
	}
}

package plus

import (
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
)

// This file defines the durable cursor protocol of the v2 change-feed
// API. A Cursor names a position in one backend's history: the revision a
// consumer has fully applied, qualified by the backend's epoch — the
// identity of the revision numbering itself. Revisions alone are not
// resumable across the process boundary: a volatile backend restarts its
// counter from zero, and a compacted log renumbers its records. The epoch
// changes exactly when old revision numbers stop meaning what they meant,
// so a resumed cursor either continues exactly where it left off or is
// refused with ErrTooFarBehind (HTTP 410) and the client resyncs from a
// snapshot.

// cursorPrefix versions the wire encoding; bump it if the payload shape
// ever changes incompatibly.
const cursorPrefix = "plusv2."

// Cursor is a resumable position in a backend's change feed.
type Cursor struct {
	// Epoch identifies the revision numbering the cursor belongs to
	// (Backend.Epoch at issue time).
	Epoch string `json:"epoch"`
	// Rev is the last revision the holder has applied; resuming streams
	// changes strictly after it.
	Rev uint64 `json:"rev"`
}

// cursorWire is the encoded payload; short keys keep cursors compact.
type cursorWire struct {
	E string `json:"e"`
	R uint64 `json:"r"`
}

// Encode renders the cursor as the opaque, URL-safe token clients carry.
func (c Cursor) Encode() string {
	body, _ := json.Marshal(cursorWire{E: c.Epoch, R: c.Rev})
	return cursorPrefix + base64.RawURLEncoding.EncodeToString(body)
}

// String implements fmt.Stringer with the wire encoding.
func (c Cursor) String() string { return c.Encode() }

// DecodeCursor parses a token produced by Cursor.Encode. The empty string
// is not a cursor; callers treat it as "start from the beginning".
func DecodeCursor(s string) (Cursor, error) {
	if !strings.HasPrefix(s, cursorPrefix) {
		return Cursor{}, fmt.Errorf("plus: bad cursor %q: missing %q prefix", s, cursorPrefix)
	}
	body, err := base64.RawURLEncoding.DecodeString(strings.TrimPrefix(s, cursorPrefix))
	if err != nil {
		return Cursor{}, fmt.Errorf("plus: bad cursor: %w", err)
	}
	var w cursorWire
	if err := json.Unmarshal(body, &w); err != nil {
		return Cursor{}, fmt.Errorf("plus: bad cursor: %w", err)
	}
	if w.E == "" {
		return Cursor{}, fmt.Errorf("plus: bad cursor: empty epoch")
	}
	return Cursor{Epoch: w.E, Rev: w.R}, nil
}

// newEpoch mints a random epoch identifier.
func newEpoch() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("plus: epoch entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

package plus

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/intern"
	"repro/internal/obs"
)

// This file wires the obs substrate into the PLUS server: the request
// middleware (trace IDs, route metrics, structured request logs), the
// GET /v2/metrics and GET /v2/slowlog admin endpoints, the backend
// latency decorator, and the registration of store/change-feed/cache
// gauges. The instrumentation contract throughout is "nil means off":
// every handle below is nil-safe, so a server built without
// WithObservability pays a nil check per site and nothing else.

// HeaderRequestID re-exports the trace header so API callers need not
// import the obs package.
const HeaderRequestID = obs.HeaderRequestID

// FeedWindow describes a backend's resident change-feed window: the
// oldest position ChangesSince can still serve (Base — a cursor at or
// after it resumes, one before it gets the 410 resync), the resident
// change count and the configured capacity. Both backends report it;
// followers use it to compute lag without guessing.
type FeedWindow struct {
	Base    uint64 `json:"base"`
	Depth   int    `json:"depth"`
	Horizon int    `json:"horizon"`
}

// changeWindower is the optional backend capability behind the
// change-feed health block; both built-in backends implement it.
type changeWindower interface{ ChangeWindow() FeedWindow }

// wakeupReporter is the optional backend capability reporting notifier
// broadcast activity; both built-in backends inherit it from notifier.
type wakeupReporter interface{ Wakeups() uint64 }

// backendChangeWindow resolves the change window through any decorator
// layers (ObserveBackend unwraps itself).
func backendChangeWindow(b Backend) (FeedWindow, bool) {
	if cw, ok := unwrapBackend(b).(changeWindower); ok {
		return cw.ChangeWindow(), true
	}
	return FeedWindow{}, false
}

// unwrapBackend peels decorator backends (ObserveBackend) off until the
// concrete storage engine is reached; capability type assertions
// (compactor, changeWindower) go through it.
func unwrapBackend(b Backend) Backend {
	for {
		ob, ok := b.(*ObserveBackend)
		if !ok {
			return b
		}
		b = ob.Backend
	}
}

// Observability bundles the server's telemetry sinks: the metric
// registry, the slow-query ring and the structured request logger. A nil
// *Observability (the default) disables everything.
type Observability struct {
	reg  *obs.Registry
	slow *obs.SlowLog
	log  *slog.Logger

	// Handles pre-registered at construction so request paths never
	// touch the registry's maps beyond the per-series lookup.
	httpRequests *obs.CounterVec   // route, method, status
	httpLatency  *obs.HistogramVec // route
	httpBytes    *obs.HistogramVec // route
	authz        *obs.CounterVec   // cap, outcome
	tokenVerify  *obs.CounterVec   // outcome
	batchRecords *obs.Histogram
	slowQueries  *obs.CounterVec // kind
	keyringLoads *obs.CounterVec // outcome
}

// NewObservability builds the telemetry bundle. Any argument may be nil:
// a nil registry disables metrics, a nil slow log disables slow-query
// capture, a nil logger disables request logs.
func NewObservability(reg *obs.Registry, slow *obs.SlowLog, logger *slog.Logger) *Observability {
	o := &Observability{reg: reg, slow: slow, log: logger}
	o.httpRequests = reg.CounterVec("plus_http_requests_total",
		"HTTP requests served, by mux route, method and status.", "route", "method", "status")
	o.httpLatency = reg.HistogramVec("plus_http_request_seconds",
		"HTTP request latency by mux route.", obs.ScaleNanos, "route")
	o.httpBytes = reg.HistogramVec("plus_http_response_bytes",
		"HTTP response body size by mux route.", 1, "route")
	o.authz = reg.CounterVec("plus_authz_total",
		"Authorization decisions by required capability and outcome.", "cap", "outcome")
	o.tokenVerify = reg.CounterVec("plus_token_verify_total",
		"Session token verifications by outcome.", "outcome")
	o.batchRecords = reg.Histogram("plus_batch_records",
		"Records per POST /v2/batch ingest unit.", 1)
	o.slowQueries = reg.CounterVec("plus_slow_queries_total",
		"Queries recorded in the slow-query log, by engine kind.", "kind")
	o.keyringLoads = reg.CounterVec("plus_keyring_reloads_total",
		"SIGHUP keyring reloads by outcome.", "outcome")
	return o
}

// Registry exposes the metric registry (nil when observability is off);
// subsystems (plusql.Attach, the daemons) register their own series on
// it.
func (o *Observability) Registry() *obs.Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// SlowQueryLog exposes the slow-query ring (nil when disabled).
func (o *Observability) SlowQueryLog() *obs.SlowLog {
	if o == nil {
		return nil
	}
	return o.slow
}

// RecordSlowQuery funnels one engine-built entry into the slow log and
// counts it; engines call it instead of touching the ring directly so
// the counter and the ring never disagree.
func (o *Observability) RecordSlowQuery(e obs.SlowEntry) {
	if o == nil {
		return
	}
	if o.slow.Record(e) {
		o.slowQueries.With(e.Kind).Inc()
	}
}

// WithObservability installs the server's telemetry bundle: request
// middleware metrics and logs, GET /v2/metrics, GET /v2/slowlog, and the
// store/change-feed/cache gauges.
func WithObservability(o *Observability) ServerOption {
	return func(s *Server) { s.obs = o }
}

// Observability returns the server's telemetry bundle (nil when not
// configured).
func (s *Server) Observability() *Observability { return s.obs }

// statusWriter captures the status and body size a handler produced. It
// forwards Flush so the /v2/changes NDJSON stream keeps flushing through
// the middleware, and Unwrap for http.ResponseController users.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// serveObserved is the request middleware: it resolves the trace ID
// (client-supplied or freshly minted), echoes it on the response,
// propagates it via context into the engines, and records the route's
// latency/status/bytes plus a structured request log line.
func (s *Server) serveObserved(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get(obs.HeaderRequestID)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.HeaderRequestID, reqID)
	r = r.WithContext(obs.WithRequestID(r.Context(), reqID))

	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(sw, r)

	// The registered pattern, not the raw path: bounded label
	// cardinality regardless of what clients request.
	_, route := s.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}
	o := s.obs
	o.httpRequests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
	o.httpLatency.With(route).ObserveSince(start)
	o.httpBytes.With(route).Observe(sw.bytes)
	if o != nil && o.log != nil {
		o.log.Info("request",
			"id", reqID,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.status,
			"bytes", sw.bytes,
			"durUs", time.Since(start).Microseconds(),
			"remote", r.RemoteAddr,
		)
	}
}

// registerServerMetrics installs the render-time gauges over state that
// already lives in the store and caches. Called from newServer once the
// engine is bound; a nil registry makes every call a no-op.
func (s *Server) registerServerMetrics() {
	reg := s.obs.Registry()
	if reg == nil {
		return
	}
	b := s.engine.store
	reg.GaugeFunc("plus_store_objects", "Live objects in the store.",
		func() float64 { return float64(b.NumObjects()) })
	reg.GaugeFunc("plus_store_edges", "Live edges in the store.",
		func() float64 { return float64(b.NumEdges()) })
	reg.GaugeFunc("plus_store_revision", "Current backend revision.",
		func() float64 { return float64(b.Revision()) })
	reg.GaugeFunc("plus_store_log_bytes", "Durable footprint in bytes (0 for volatile backends).",
		func() float64 { return float64(b.Size()) })
	reg.GaugeFunc("plus_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(serverStart).Seconds() })
	if _, ok := backendChangeWindow(b); ok {
		reg.GaugeFunc("plus_changefeed_base_revision",
			"Oldest change-feed position the backend can still serve.",
			func() float64 { w, _ := backendChangeWindow(b); return float64(w.Base) })
		reg.GaugeFunc("plus_changefeed_ring_depth",
			"Resident change-feed entries.",
			func() float64 { w, _ := backendChangeWindow(b); return float64(w.Depth) })
		reg.GaugeFunc("plus_changefeed_horizon",
			"Configured change-feed retention capacity.",
			func() float64 { w, _ := backendChangeWindow(b); return float64(w.Horizon) })
	}
	if wr, ok := unwrapBackend(b).(wakeupReporter); ok {
		reg.CounterFunc("plus_notify_wakeups_total",
			"Change-feed notifier broadcasts that woke parked followers.",
			func() float64 { return float64(wr.Wakeups()) })
	}
	if ip, ok := unwrapBackend(b).(indexStatsProvider); ok {
		entries := reg.GaugeFuncVec("plus_index_entries",
			"Secondary-index postings by index (kind/name/attr).", "index")
		entries.Register(func() float64 { return float64(ip.IndexStats().KindEntries) }, "kind")
		entries.Register(func() float64 { return float64(ip.IndexStats().NameEntries) }, "name")
		entries.Register(func() float64 { return float64(ip.IndexStats().AttrEntries) }, "attr")
		reg.GaugeFunc("plus_index_revision",
			"Backend revision the secondary indexes currently cover.",
			func() float64 { return float64(ip.IndexStats().Rev) })
		reg.CounterFunc("plus_index_hits_total",
			"Lookup probes answered from the secondary indexes.",
			func() float64 { return float64(ip.IndexStats().Hits) })
		reg.CounterFunc("plus_index_misses_total",
			"Lookup probes that fell back to a linear scan.",
			func() float64 { return float64(ip.IndexStats().Misses) })
		reg.CounterFunc("plus_index_advances_total",
			"Incremental index catch-ups through the change feed.",
			func() float64 { return float64(ip.IndexStats().Advances) })
		reg.CounterFunc("plus_index_builds_total",
			"Initial secondary-index constructions.",
			func() float64 { return float64(ip.IndexStats().Builds) })
		reg.CounterFunc("plus_index_rebuilds_total",
			"Hazard rebuilds after change-feed truncation (ErrTooFarBehind).",
			func() float64 { return float64(ip.IndexStats().Rebuilds) })
	}
	reg.GaugeFunc("plus_intern_strings",
		"Distinct strings resident in the global intern table.",
		func() float64 { return float64(intern.Count()) })
	reg.GaugeFunc("plus_intern_bytes",
		"Bytes of string data held by the global intern table.",
		func() float64 { return float64(intern.Bytes()) })
	if ce, ok := s.answerer.(*CachedEngine); ok {
		reg.GaugeFunc("plus_lineage_cache_entries", "Cached lineage answers.",
			func() float64 { return float64(ce.Stats().Entries) })
		reg.CounterFunc("plus_lineage_cache_hits_total", "Lineage cache hits.",
			func() float64 { return float64(ce.Stats().Hits) })
		reg.CounterFunc("plus_lineage_cache_misses_total", "Lineage cache misses.",
			func() float64 { return float64(ce.Stats().Misses) })
		reg.CounterFunc("plus_lineage_cache_delta_evictions_total",
			"Lineage cache entries evicted by change-feed deltas.",
			func() float64 { return float64(ce.Stats().DeltaEvictions) })
		reg.CounterFunc("plus_lineage_cache_wipes_total",
			"Lineage cache full invalidations.",
			func() float64 { return float64(ce.Stats().Wipes) })
	}
}

// handleV2Metrics serves the registry under the admin capability:
// Prometheus text exposition by default, the JSON snapshot with
// ?format=json (what plusctl top polls).
func (s *Server) handleV2Metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	if _, apiErr := s.Authorize(r, CapAdmin); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	reg := s.obs.Registry()
	switch r.URL.Query().Get("format") {
	case "", "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = reg.WritePrometheus(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = reg.WriteJSON(w)
	default:
		WriteAPIError(w, v2Errorf(http.StatusBadRequest, CodeBadRequest,
			"plus: unknown metrics format %q (want prometheus or json)", r.URL.Query().Get("format")))
	}
}

// handleV2Slowlog serves the slow-query ring (admin capability), oldest
// first.
func (s *Server) handleV2Slowlog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		MethodNotAllowed(w, http.MethodGet)
		return
	}
	if _, apiErr := s.Authorize(r, CapAdmin); apiErr != nil {
		WriteAPIError(w, apiErr)
		return
	}
	entries := s.obs.SlowQueryLog().Entries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	writeJSON(w, http.StatusOK, entries)
}

// ObserveBackend decorates a Backend with per-operation latency
// histograms (plus_backend_op_seconds{op}). Read paths that must stay
// lock-free and allocation-free (Revision, Epoch, Notify, Ping) pass
// through unmeasured — their cost is below timer resolution and they run
// on every long-poll loop. Capability assertions against the concrete
// engine (compaction, change windows) resolve through unwrapBackend.
type ObserveBackend struct {
	Backend
	ops *obs.HistogramVec
}

// NewObserveBackend wraps b; a nil registry returns b unwrapped since
// there is nothing to record into.
func NewObserveBackend(b Backend, reg *obs.Registry) Backend {
	if reg == nil {
		return b
	}
	return &ObserveBackend{
		Backend: b,
		ops: reg.HistogramVec("plus_backend_op_seconds",
			"Storage backend operation latency by operation.", obs.ScaleNanos, "op"),
	}
}

func (o *ObserveBackend) PutObject(obj Object) error {
	t := time.Now()
	err := o.Backend.PutObject(obj)
	o.ops.With("put_object").ObserveSince(t)
	return err
}

func (o *ObserveBackend) PutEdge(e Edge) error {
	t := time.Now()
	err := o.Backend.PutEdge(e)
	o.ops.With("put_edge").ObserveSince(t)
	return err
}

func (o *ObserveBackend) PutSurrogate(sp SurrogateSpec) error {
	t := time.Now()
	err := o.Backend.PutSurrogate(sp)
	o.ops.With("put_surrogate").ObserveSince(t)
	return err
}

func (o *ObserveBackend) Apply(b Batch) (uint64, error) {
	t := time.Now()
	rev, err := o.Backend.Apply(b)
	o.ops.With("apply").ObserveSince(t)
	return rev, err
}

func (o *ObserveBackend) GetObject(id string) (Object, error) {
	t := time.Now()
	obj, err := o.Backend.GetObject(id)
	o.ops.With("get_object").ObserveSince(t)
	return obj, err
}

func (o *ObserveBackend) ChangesSince(since uint64) ([]Change, error) {
	t := time.Now()
	cs, err := o.Backend.ChangesSince(since)
	o.ops.With("changes_since").ObserveSince(t)
	return cs, err
}

func (o *ObserveBackend) Snapshot() (*Snapshot, error) {
	t := time.Now()
	sn, err := o.Backend.Snapshot()
	o.ops.With("snapshot").ObserveSince(t)
	return sn, err
}

package plus

import (
	"fmt"
	"time"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// Mode selects how a lineage answer is protected for the viewer.
type Mode string

const (
	// ModeHide answers with the naive all-or-nothing account.
	ModeHide Mode = "hide"
	// ModeSurrogate answers with the maximally informative protected
	// account of the Surrogate Generation Algorithm.
	ModeSurrogate Mode = "surrogate"
)

// Request is one lineage query: the paper's canonical "what data and
// processes contributed to this data?" traversal.
type Request struct {
	// Start is the object whose lineage is requested.
	Start string
	// Direction selects ancestors (Backward, the common provenance
	// question), descendants (Forward), or the full weakly-connected
	// lineage (Undirected).
	Direction graph.Direction
	// Depth bounds the traversal in hops; 0 means unbounded.
	Depth int
	// Viewer is the consumer's privilege-predicate.
	Viewer privilege.Predicate
	// Mode picks hide vs surrogate protection; default surrogate.
	Mode Mode
	// LabelFilter, when set, restricts the traversal to edges with this
	// label (e.g. only "input-to" dependencies).
	LabelFilter string
	// KindFilter, when set, restricts the traversal to objects of this
	// kind; the start object is always included. Paths through
	// filtered-out objects are not followed.
	KindFilter ObjectKind
}

// Timing is the Figure 10 cost decomposition of answering one query.
type Timing struct {
	// DBAccess: reading the lineage closure out of the store.
	DBAccess time.Duration
	// Build: assembling the graph, labeling, policy and surrogate
	// registry from the fetched records.
	Build time.Duration
	// Protect: generating the protected account.
	Protect time.Duration
	// Total covers the whole query.
	Total time.Duration
}

// Result is a protected lineage answer.
type Result struct {
	Spec    *account.Spec
	Account *account.Account
	Timing  Timing
}

// Engine answers lineage queries against a store under a privilege
// lattice.
type Engine struct {
	store   *Store
	lattice *privilege.Lattice
}

// NewEngine binds a store to the lattice its Lowest nicknames refer to.
func NewEngine(store *Store, lattice *privilege.Lattice) *Engine {
	return &Engine{store: store, lattice: lattice}
}

// Lattice returns the engine's privilege lattice.
func (en *Engine) Lattice() *privilege.Lattice { return en.lattice }

// fetched is the raw lineage closure pulled from the store.
type fetched struct {
	objects    []Object
	edges      []Edge
	surrogates []SurrogateSpec
}

// fetch walks the store's adjacency from the start object, honouring the
// requested direction and depth, and returns every object, edge and
// surrogate in the closure. This is the "DB access" phase of Figure 10.
func (en *Engine) fetch(req Request) (*fetched, error) {
	s := en.store
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	start, ok := s.objects[req.Start]
	if !ok {
		return nil, fmt.Errorf("plus: lineage of %q: %w", req.Start, ErrNotFound)
	}
	f := &fetched{objects: []Object{start}}
	seen := map[string]int{req.Start: 0}
	edgeSeen := map[[2]string]bool{}
	queue := []string{req.Start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		depth := seen[cur]
		if req.Depth > 0 && depth >= req.Depth {
			continue
		}
		var steps []Edge
		if req.Direction == graph.Forward || req.Direction == graph.Undirected {
			steps = append(steps, s.out[cur]...)
		}
		if req.Direction == graph.Backward || req.Direction == graph.Undirected {
			steps = append(steps, s.in[cur]...)
		}
		for _, e := range steps {
			if req.LabelFilter != "" && e.Label != req.LabelFilter {
				continue
			}
			next := e.To
			if next == cur {
				next = e.From
			}
			if req.KindFilter != "" && s.objects[next].Kind != req.KindFilter {
				continue
			}
			key := [2]string{e.From, e.To}
			if !edgeSeen[key] {
				edgeSeen[key] = true
				f.edges = append(f.edges, e)
			}
			if _, ok := seen[next]; !ok {
				seen[next] = depth + 1
				f.objects = append(f.objects, s.objects[next])
				queue = append(queue, next)
			}
		}
	}
	for _, o := range f.objects {
		f.surrogates = append(f.surrogates, s.surrogates[o.ID]...)
	}
	return f, nil
}

// build assembles the account.Spec from a fetched closure: the "build
// graph" phase of Figure 10.
func (en *Engine) build(f *fetched) (*account.Spec, error) {
	g := graph.New()
	lb := privilege.NewLabeling(en.lattice)
	pol := policy.New(en.lattice)
	reg := surrogate.NewRegistry(lb)

	for _, o := range f.objects {
		feats := graph.Features{"name": o.Name, "kind": string(o.Kind)}
		for k, v := range o.Features {
			feats[k] = v
		}
		g.AddNode(graph.Node{ID: graph.NodeID(o.ID), Features: feats})
		if o.Lowest != "" {
			if err := lb.SetNode(graph.NodeID(o.ID), privilege.Predicate(o.Lowest)); err != nil {
				return nil, err
			}
		}
		if o.Protect != "" {
			below := policy.Surrogate
			if o.Protect == string(ModeHide) {
				below = policy.Hide
			}
			lowest := privilege.Predicate(o.Lowest)
			if o.Lowest == "" {
				lowest = privilege.Public
			}
			if err := pol.SetNodeThreshold(graph.NodeID(o.ID), lowest, below); err != nil {
				return nil, err
			}
		}
	}
	for _, e := range f.edges {
		ge := graph.Edge{From: graph.NodeID(e.From), To: graph.NodeID(e.To), Label: e.Label}
		if err := g.AddEdge(ge); err != nil {
			return nil, err
		}
		if e.Marking == "" {
			continue
		}
		lowest := privilege.Predicate(e.Lowest)
		if e.Lowest == "" {
			lowest = privilege.Public
		}
		var below policy.Marking
		switch e.Marking {
		case string(ModeSurrogate):
			below = policy.Surrogate
		case string(ModeHide):
			below = policy.Hide
		default:
			return nil, fmt.Errorf("plus: edge %s->%s has unknown marking %q", e.From, e.To, e.Marking)
		}
		if err := pol.SetIncidenceThreshold(ge.To, ge.ID(), lowest, below); err != nil {
			return nil, err
		}
	}
	for _, sp := range f.surrogates {
		lowest := privilege.Predicate(sp.Lowest)
		if sp.Lowest == "" {
			lowest = privilege.Public
		}
		feats := graph.Features{"name": sp.Name}
		for k, v := range sp.Features {
			feats[k] = v
		}
		err := reg.Add(graph.NodeID(sp.ForID), surrogate.Surrogate{
			ID:        graph.NodeID(sp.ID),
			Features:  feats,
			Lowest:    lowest,
			InfoScore: sp.InfoScore,
		})
		if err != nil {
			return nil, err
		}
	}
	return &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}, nil
}

// Lineage answers one lineage query with a protected account and its cost
// decomposition.
func (en *Engine) Lineage(req Request) (*Result, error) {
	t0 := time.Now()
	if req.Viewer == "" {
		req.Viewer = privilege.Public
	}
	if req.Mode == "" {
		req.Mode = ModeSurrogate
	}
	if !en.lattice.Known(req.Viewer) {
		return nil, fmt.Errorf("plus: unknown viewer predicate %q", req.Viewer)
	}

	f, err := en.fetch(req)
	tFetch := time.Now()
	if err != nil {
		return nil, err
	}

	spec, err := en.build(f)
	tBuild := time.Now()
	if err != nil {
		return nil, err
	}

	var acct *account.Account
	switch req.Mode {
	case ModeHide:
		acct, err = account.GenerateHide(spec, req.Viewer)
	case ModeSurrogate:
		acct, err = account.Generate(spec, req.Viewer)
	default:
		err = fmt.Errorf("plus: unknown mode %q", req.Mode)
	}
	tProtect := time.Now()
	if err != nil {
		return nil, err
	}

	return &Result{
		Spec:    spec,
		Account: acct,
		Timing: Timing{
			DBAccess: tFetch.Sub(t0),
			Build:    tBuild.Sub(tFetch),
			Protect:  tProtect.Sub(tBuild),
			Total:    tProtect.Sub(t0),
		},
	}, nil
}

package plus

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/account"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/privilege"
	"repro/internal/surrogate"
)

// Mode selects how a lineage answer is protected for the viewer.
type Mode string

const (
	// ModeHide answers with the naive all-or-nothing account.
	ModeHide Mode = "hide"
	// ModeSurrogate answers with the maximally informative protected
	// account of the Surrogate Generation Algorithm.
	ModeSurrogate Mode = "surrogate"
)

// Request is one lineage query: the paper's canonical "what data and
// processes contributed to this data?" traversal.
type Request struct {
	// Start is the object whose lineage is requested.
	Start string
	// StartName, when Start is empty, seeds the traversal from every
	// object whose name feature equals it — "lineage of everything called
	// X". Seed resolution is served by the storage name index, so it costs
	// a posting-list lookup, not a scan. It is an error if no object
	// matches.
	StartName string
	// Direction selects ancestors (Backward, the common provenance
	// question), descendants (Forward), or the full weakly-connected
	// lineage (Undirected).
	Direction graph.Direction
	// Depth bounds the traversal in hops; 0 means unbounded.
	Depth int
	// Viewer is the consumer's privilege-predicate.
	Viewer privilege.Predicate
	// Mode picks hide vs surrogate protection; default surrogate.
	Mode Mode
	// LabelFilter, when set, restricts the traversal to edges with this
	// label (e.g. only "input-to" dependencies).
	LabelFilter string
	// KindFilter, when set, restricts the traversal to objects of this
	// kind; the start object is always included. Paths through
	// filtered-out objects are not followed.
	KindFilter ObjectKind
}

// Timing is the Figure 10 cost decomposition of answering one query.
type Timing struct {
	// DBAccess: reading the lineage closure out of the store.
	DBAccess time.Duration
	// Build: assembling the graph, labeling, policy and surrogate
	// registry from the fetched records.
	Build time.Duration
	// Protect: generating the protected account.
	Protect time.Duration
	// Total covers the whole query.
	Total time.Duration
	// Levels is how many BFS levels the closure fetch expanded — the
	// traversal depth actually reached, bounded by Request.Depth.
	Levels int
}

// Result is a protected lineage answer.
type Result struct {
	Spec    *account.Spec
	Account *account.Account
	Timing  Timing

	// utilOnce memoises the §4.1 utility measures: PathUtility walks the
	// whole reachability of both graphs (quadratic in the answer size),
	// and a cache-served answer is asked for the same numbers on every
	// request.
	utilOnce sync.Once
	pathUtil float64
	nodeUtil float64
}

// Utilities returns the §4.1 path/node utility of the protected answer,
// computed on first use and reused for every later serving of the same
// Result (cached answers are shared and read-only).
func (r *Result) Utilities() (path, node float64) {
	r.utilOnce.Do(func() {
		r.pathUtil = measure.PathUtility(r.Spec, r.Account)
		r.nodeUtil = measure.NodeUtility(r.Spec, r.Account)
	})
	return r.pathUtil, r.nodeUtil
}

// Engine answers lineage queries against a storage backend under a
// privilege lattice. Queries run over immutable snapshots (Backend
// .Snapshot), so they never hold a store lock during traversal: readers
// scale with cores and writers are never blocked by a deep closure walk.
type Engine struct {
	store   Backend
	lattice *privilege.Lattice

	// fetchWorkers bounds the frontier-BFS worker pool; defaults to
	// GOMAXPROCS. Atomic so SetFetchWorkers is safe while queries are in
	// flight.
	fetchWorkers atomic.Int32

	// obsHooks holds the engine's telemetry handles (SetObservability);
	// nil means uninstrumented. Atomic so wiring it after construction is
	// safe while queries are in flight.
	obsHooks atomic.Pointer[lineageObs]
}

// lineageObs is the engine's telemetry bundle: phase/level histograms
// plus the shared slow-query sink.
type lineageObs struct {
	o      *Observability
	phase  *obs.HistogramVec // dbAccess / build / protect / total
	levels *obs.Histogram
}

// SetObservability instruments the engine: per-phase latency histograms
// (plus_lineage_seconds{phase}), the BFS level distribution, and
// slow-query capture through o's ring. Only computed queries record —
// the CachedEngine serves hits without touching the engine, so cached
// answers never double-count. Passing nil uninstruments.
func (en *Engine) SetObservability(o *Observability) {
	if o == nil {
		en.obsHooks.Store(nil)
		return
	}
	reg := o.Registry()
	en.obsHooks.Store(&lineageObs{
		o: o,
		phase: reg.HistogramVec("plus_lineage_seconds",
			"Lineage query latency by phase (dbAccess/build/protect/total).", obs.ScaleNanos, "phase"),
		levels: reg.Histogram("plus_lineage_bfs_levels",
			"BFS levels expanded per computed lineage query.", 1),
	})
}

// observe records one computed lineage answer's telemetry.
func (en *Engine) observe(ctx context.Context, req Request, t Timing) {
	h := en.obsHooks.Load()
	if h == nil {
		return
	}
	h.phase.With("dbAccess").Observe(t.DBAccess.Nanoseconds())
	h.phase.With("build").Observe(t.Build.Nanoseconds())
	h.phase.With("protect").Observe(t.Protect.Nanoseconds())
	h.phase.With("total").Observe(t.Total.Nanoseconds())
	h.levels.Observe(int64(t.Levels))
	if h.o.SlowQueryLog().Eligible(t.Total) {
		h.o.RecordSlowQuery(obs.SlowEntry{
			RequestID: obs.RequestID(ctx),
			Kind:      "lineage",
			Query:     describeLineage(req),
			Viewer:    string(req.Viewer),
			TotalUS:   t.Total.Microseconds(),
			Phases: []obs.Phase{
				{Name: "dbAccess", US: t.DBAccess.Microseconds()},
				{Name: "build", US: t.Build.Microseconds()},
				{Name: "protect", US: t.Protect.Microseconds()},
			},
			Levels: t.Levels,
		})
	}
}

// startRef names a request's seed for error messages and the slow-query
// log: the start id, or name:<StartName> for multi-seed requests.
func startRef(req Request) string {
	if req.Start == "" && req.StartName != "" {
		return "name:" + req.StartName
	}
	return req.Start
}

// describeLineage renders a request compactly for the slow-query log.
func describeLineage(req Request) string {
	dir := "ancestors"
	switch req.Direction {
	case graph.Forward:
		dir = "descendants"
	case graph.Undirected:
		dir = "both"
	}
	s := fmt.Sprintf("lineage start=%s direction=%s mode=%s", startRef(req), dir, req.Mode)
	if req.Depth > 0 {
		s += fmt.Sprintf(" depth=%d", req.Depth)
	}
	if req.LabelFilter != "" {
		s += " label=" + req.LabelFilter
	}
	if req.KindFilter != "" {
		s += " kind=" + string(req.KindFilter)
	}
	return s
}

// NewEngine binds a backend to the lattice its Lowest nicknames refer to.
func NewEngine(store Backend, lattice *privilege.Lattice) *Engine {
	en := &Engine{store: store, lattice: lattice}
	en.fetchWorkers.Store(int32(runtime.GOMAXPROCS(0)))
	return en
}

// Lattice returns the engine's privilege lattice.
func (en *Engine) Lattice() *privilege.Lattice { return en.lattice }

// Backend returns the storage backend the engine queries.
func (en *Engine) Backend() Backend { return en.store }

// SetFetchWorkers overrides the worker-pool width of the parallel fetch
// phase (minimum 1); useful for benchmarks and tests.
func (en *Engine) SetFetchWorkers(n int) {
	if n < 1 {
		n = 1
	}
	en.fetchWorkers.Store(int32(n))
}

// fetched is the raw lineage closure pulled from the store.
type fetched struct {
	objects    []Object
	edges      []Edge
	surrogates []SurrogateSpec
	// levels is how many BFS levels the walk expanded.
	levels int
}

// parallelFrontier is the frontier width at which fetch switches from a
// single-threaded expansion to the worker pool: below it the
// coordination overhead outweighs the map lookups being parallelised.
const parallelFrontier = 64

// expansion is what expanding one frontier node yields: the edges seen
// at that node and the neighbour ids they lead to (parallel slices).
type expansion struct {
	edges []Edge
	next  []string
}

// fetch walks a snapshot's adjacency from the start object, honouring the
// requested direction and depth, and returns every object, edge and
// surrogate in the closure. This is the "DB access" phase of Figure 10.
//
// The walk is a level-synchronised BFS: each depth's frontier is expanded
// — in parallel across a worker pool once the frontier is wide enough —
// and the results are merged in frontier order, so the visit order (and
// therefore the fetched closure) is identical to the sequential walk.
// Because the snapshot is immutable, no locks are held at any point.
//
// Cancellation is checked once per BFS level: a deep walk over a large
// store stops within one frontier expansion of the context's deadline.
func (en *Engine) fetch(ctx context.Context, req Request) (*fetched, error) {
	sn, err := en.store.Snapshot()
	if err != nil {
		return nil, err
	}
	// Resolve the seed set: an explicit start object, or — when Start is
	// empty — every object whose name matches StartName, answered by the
	// storage name index.
	var seeds []string
	if req.Start != "" || req.StartName == "" {
		if _, ok := sn.Object(req.Start); !ok {
			return nil, fmt.Errorf("plus: lineage of %q: %w", req.Start, ErrNotFound)
		}
		seeds = []string{req.Start}
	} else {
		seeds = append(seeds, sn.FindByName(req.StartName)...)
		if len(seeds) == 0 {
			return nil, fmt.Errorf("plus: lineage of %q: %w", startRef(req), ErrNotFound)
		}
		// Index postings are unordered; the BFS visit order (and so the
		// fetched closure) must be deterministic.
		sort.Strings(seeds)
	}

	// expand collects the admissible edges and neighbours of one node.
	expand := func(cur string) expansion {
		var ex expansion
		var steps []Edge
		if req.Direction == graph.Forward || req.Direction == graph.Undirected {
			steps = append(steps, sn.Out(cur)...)
		}
		if req.Direction == graph.Backward || req.Direction == graph.Undirected {
			steps = append(steps, sn.In(cur)...)
		}
		for _, e := range steps {
			if req.LabelFilter != "" && e.Label != req.LabelFilter {
				continue
			}
			next := e.To
			if next == cur {
				next = e.From
			}
			if req.KindFilter != "" {
				if o, ok := sn.Object(next); !ok || o.Kind != req.KindFilter {
					continue
				}
			}
			ex.edges = append(ex.edges, e)
			ex.next = append(ex.next, next)
		}
		return ex
	}

	f := &fetched{}
	seen := map[string]bool{}
	edgeSeen := map[[2]string]bool{}
	var frontier []string
	for _, id := range seeds {
		if seen[id] {
			continue
		}
		seen[id] = true
		o, _ := sn.Object(id)
		f.objects = append(f.objects, o)
		frontier = append(frontier, id)
	}
	depth := 0
	for ; len(frontier) > 0 && (req.Depth == 0 || depth < req.Depth); depth++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("plus: lineage of %q: %w", startRef(req), err)
		}
		expansions := make([]expansion, len(frontier))
		if workers := int(en.fetchWorkers.Load()); workers > 1 && len(frontier) >= parallelFrontier {
			// Worker pool over contiguous chunks of the frontier.
			if workers > len(frontier) {
				workers = len(frontier)
			}
			chunk := (len(frontier) + workers - 1) / workers
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := w * chunk
				hi := lo + chunk
				if lo >= len(frontier) {
					break
				}
				if hi > len(frontier) {
					hi = len(frontier)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					for i := lo; i < hi; i++ {
						expansions[i] = expand(frontier[i])
					}
				}(lo, hi)
			}
			wg.Wait()
		} else {
			for i, cur := range frontier {
				expansions[i] = expand(cur)
			}
		}

		// Merge in frontier order: dedupe is sequential, so the closure
		// is deterministic regardless of worker scheduling.
		var next []string
		for _, ex := range expansions {
			for i, e := range ex.edges {
				key := [2]string{e.From, e.To}
				if !edgeSeen[key] {
					edgeSeen[key] = true
					f.edges = append(f.edges, e)
				}
				n := ex.next[i]
				if !seen[n] {
					seen[n] = true
					o, _ := sn.Object(n)
					f.objects = append(f.objects, o)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	f.levels = depth
	for _, o := range f.objects {
		f.surrogates = append(f.surrogates, sn.Surrogates(o.ID)...)
	}
	return f, nil
}

// build assembles the account.Spec from a fetched closure: the "build
// graph" phase of Figure 10.
func (en *Engine) build(f *fetched) (*account.Spec, error) {
	return buildSpec(en.lattice, f)
}

// buildSpec turns a fetched record set into an account.Spec over the
// lattice: graph, labeling, policy thresholds and surrogate registry.
// Shared by the lineage engine (per-closure) and SpecFromSnapshot
// (whole store, for PLUSQL's protected views).
func buildSpec(lattice *privilege.Lattice, f *fetched) (*account.Spec, error) {
	g := graph.New()
	lb := privilege.NewLabeling(lattice)
	pol := policy.New(lattice)
	reg := surrogate.NewRegistry(lb)

	for _, o := range f.objects {
		if err := applyObjectRecord(g, lb, pol, o); err != nil {
			return nil, err
		}
	}
	for _, e := range f.edges {
		if err := applyEdgeRecord(g, pol, e); err != nil {
			return nil, err
		}
	}
	for _, sp := range f.surrogates {
		if err := applySurrogateRecord(reg, sp); err != nil {
			return nil, err
		}
	}
	return &account.Spec{Graph: g, Labeling: lb, Policy: pol, Surrogates: reg}, nil
}

// Lineage answers one lineage query with a protected account and its cost
// decomposition.
func (en *Engine) Lineage(req Request) (*Result, error) {
	return en.LineageContext(context.Background(), req)
}

// LineageContext is Lineage with cancellation and deadline propagation:
// the context is checked at every BFS level of the closure fetch and at
// each phase boundary, so a cancelled request releases its goroutine
// instead of finishing a walk nobody is waiting for.
func (en *Engine) LineageContext(ctx context.Context, req Request) (*Result, error) {
	t0 := time.Now()
	if req.Viewer == "" {
		req.Viewer = privilege.Public
	}
	if req.Mode == "" {
		req.Mode = ModeSurrogate
	}
	if !en.lattice.Known(req.Viewer) {
		return nil, fmt.Errorf("plus: unknown viewer predicate %q", req.Viewer)
	}

	f, err := en.fetch(ctx, req)
	tFetch := time.Now()
	if err != nil {
		return nil, err
	}

	spec, err := en.build(f)
	tBuild := time.Now()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plus: lineage of %q: %w", startRef(req), err)
	}

	var acct *account.Account
	switch req.Mode {
	case ModeHide:
		acct, err = account.GenerateHide(spec, req.Viewer)
	case ModeSurrogate:
		acct, err = account.Generate(spec, req.Viewer)
	default:
		err = fmt.Errorf("plus: unknown mode %q", req.Mode)
	}
	tProtect := time.Now()
	if err != nil {
		return nil, err
	}

	res := &Result{
		Spec:    spec,
		Account: acct,
		Timing: Timing{
			DBAccess: tFetch.Sub(t0),
			Build:    tBuild.Sub(tFetch),
			Protect:  tProtect.Sub(tBuild),
			Total:    tProtect.Sub(t0),
			Levels:   f.levels,
		},
	}
	en.observe(ctx, req, res.Timing)
	return res, nil
}

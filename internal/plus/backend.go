package plus

import "fmt"

// This file defines the storage seam of the PLUS substrate. The original
// prototype was "one file, one lock": a single map-backed log index behind
// a global RWMutex that every lineage query held for its whole closure
// walk. Backend extracts that contract into an interface so durable
// (LogBackend) and serving-optimised (MemBackend) engines are
// interchangeable, and Snapshot gives queries an immutable,
// revision-stamped view of the store so readers never contend with
// writers.

// Backend is the storage contract the query engine, HTTP server and
// facade layers program against. All methods must be safe for concurrent
// use. Mutations must be atomic per call and must bump Revision exactly
// once per applied record, so equal revisions imply identical contents
// (within one process).
type Backend interface {
	// PutObject stores (or replaces) a provenance object.
	PutObject(o Object) error
	// PutEdge stores a provenance edge; both endpoints must exist.
	PutEdge(e Edge) error
	// PutSurrogate stores a surrogate version of an existing object.
	PutSurrogate(sp SurrogateSpec) error
	// Apply stores a whole batch with one lock acquisition; validation
	// failures must leave the backend untouched. It returns the revision
	// after the batch's last record, read while the apply still holds its
	// locks — the exact change-feed position of this batch, uncontaminated
	// by concurrent writers (the cursor POST /v2/batch hands back).
	Apply(b Batch) (uint64, error)

	// GetObject fetches one object by id (ErrNotFound if unknown).
	GetObject(id string) (Object, error)
	// History returns the superseded versions of an object, oldest first.
	History(id string) []Object
	// Objects returns every live object (unspecified order).
	Objects() []Object
	// EdgesFrom / EdgesTo return an object's adjacency in insertion order.
	EdgesFrom(id string) []Edge
	EdgesTo(id string) []Edge
	// SurrogatesOf returns the stored surrogate specs for an object.
	SurrogatesOf(id string) []SurrogateSpec

	// NumObjects / NumEdges report live record counts.
	NumObjects() int
	NumEdges() int
	// Revision returns a counter that increases with every stored record.
	Revision() uint64
	// Epoch identifies the backend's revision numbering. Two calls return
	// the same value as long as revisions keep meaning the same prefixes
	// of history: a durable backend keeps its epoch across restarts, a
	// volatile backend mints a fresh one per instance, and rewriting
	// history (log compaction) rotates it. Cursors pair a revision with
	// the epoch it was issued under, so a resumed cursor from another
	// numbering is detected instead of silently misread.
	Epoch() string
	// Notify returns a channel that is closed after the next applied
	// mutation (or Close) — the no-poll wakeup hook for change-feed
	// followers. Consumers must arm (call Notify) BEFORE re-checking
	// Revision, then re-arm after each wakeup; a mutation landing
	// between the check and the wait has already closed the armed
	// channel, so wakeups are never missed. Spurious wakeups are
	// allowed.
	Notify() <-chan struct{}
	// ChangesSince returns the ordered record deltas applied after
	// revision since, up to the current revision (one Change per revision
	// bump, in revision order). Backends may bound how much history they
	// retain: a request past the horizon fails with ErrTooFarBehind, the
	// caller's cue to rebuild derived state from a fresh snapshot instead
	// of patching. A since beyond the current revision is an error.
	ChangesSince(since uint64) ([]Change, error)
	// Snapshot returns an immutable, revision-stamped view of the whole
	// store. The returned snapshot is stable forever: later writes bump
	// the revision and surface only in later snapshots. Implementations
	// cache the clone per revision, so read-heavy workloads pay for at
	// most one clone per intervening write.
	Snapshot() (*Snapshot, error)

	// Size reports the durable footprint in bytes (0 for volatile
	// backends).
	Size() int64
	// Ping reports whether the backend is open and usable.
	Ping() error
	// Close releases the backend; subsequent mutations and reads fail
	// with ErrClosed.
	Close() error
}

// Snapshot is an immutable point-in-time view of a backend. Its maps are
// never mutated after construction: map headers are cloned from the live
// index while slice values share backing arrays with it, which is safe
// because the live index only ever appends (either growing in place past
// this snapshot's length, which readers here never look at, or
// reallocating).
type Snapshot struct {
	rev        uint64
	objects    map[string]Object
	out        map[string][]Edge
	in         map[string][]Edge
	surrogates map[string][]SurrogateSpec

	// source is the backend the snapshot was cloned from; DeltaSince
	// reads the change feed through it.
	source Backend

	// idx is the owning backend's live secondary index (shared by every
	// snapshot of that backend); nil for hand-built snapshots, in which
	// case FindBy* scan. See index.go.
	idx *backendIndex
}

// Revision reports the backend revision this snapshot was taken at.
func (sn *Snapshot) Revision() uint64 { return sn.rev }

// NumObjects reports how many objects the snapshot holds.
func (sn *Snapshot) NumObjects() int { return len(sn.objects) }

// Object looks up one object.
func (sn *Snapshot) Object(id string) (Object, bool) {
	o, ok := sn.objects[id]
	return o, ok
}

// Objects returns every object in the snapshot in unspecified order.
func (sn *Snapshot) Objects() []Object {
	out := make([]Object, 0, len(sn.objects))
	for _, o := range sn.objects {
		out = append(out, o)
	}
	return out
}

// Out returns the outgoing edges of an object. The slice is shared with
// the snapshot and must not be mutated.
func (sn *Snapshot) Out(id string) []Edge { return sn.out[id] }

// In returns the incoming edges of an object. The slice is shared with
// the snapshot and must not be mutated.
func (sn *Snapshot) In(id string) []Edge { return sn.in[id] }

// Surrogates returns the surrogate specs of an object. The slice is
// shared with the snapshot and must not be mutated.
func (sn *Snapshot) Surrogates(id string) []SurrogateSpec { return sn.surrogates[id] }

// cloneIndex builds a Snapshot from live index maps. Callers must hold
// whatever lock makes the maps stable for the duration.
func cloneIndex(source Backend, rev uint64,
	objects map[string]Object,
	out, in map[string][]Edge,
	surrogates map[string][]SurrogateSpec) *Snapshot {
	sn := &Snapshot{
		source:     source,
		rev:        rev,
		objects:    make(map[string]Object, len(objects)),
		out:        make(map[string][]Edge, len(out)),
		in:         make(map[string][]Edge, len(in)),
		surrogates: make(map[string][]SurrogateSpec, len(surrogates)),
	}
	sn.mergeInto(objects, out, in, surrogates)
	return sn
}

// mergeInto copies one shard's live maps into an under-construction
// snapshot (used by sharded backends whose index is partitioned).
func (sn *Snapshot) mergeInto(objects map[string]Object,
	out, in map[string][]Edge,
	surrogates map[string][]SurrogateSpec) {
	for id, o := range objects {
		sn.objects[id] = o
	}
	for id, es := range out {
		sn.out[id] = es
	}
	for id, es := range in {
		sn.in[id] = es
	}
	for id, sps := range surrogates {
		sn.surrogates[id] = sps
	}
}

// validateObject is the shared object-shape check every backend applies
// before accepting a record.
func validateObject(o Object) error {
	if o.ID == "" {
		return fmt.Errorf("plus: object with empty id")
	}
	if o.Kind != Data && o.Kind != Invocation {
		return fmt.Errorf("plus: object %s has unknown kind %q", o.ID, o.Kind)
	}
	if o.Protect != "" && o.Protect != string(ModeHide) && o.Protect != string(ModeSurrogate) {
		return fmt.Errorf("plus: object %s has unknown protect mode %q", o.ID, o.Protect)
	}
	return nil
}

// validateSurrogate is the shared surrogate-shape check.
func validateSurrogate(sp SurrogateSpec) error {
	if sp.ID == "" || sp.ID == sp.ForID {
		return fmt.Errorf("plus: surrogate for %s has bad id %q", sp.ForID, sp.ID)
	}
	if sp.InfoScore < 0 || sp.InfoScore > 1 {
		return fmt.Errorf("plus: surrogate %s infoScore %v out of [0,1]", sp.ID, sp.InfoScore)
	}
	return nil
}

package plus

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/privilege"
)

func testServer(t *testing.T) (*Client, *Store) {
	t.Helper()
	s, _ := openTemp(t)
	srv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), s
}

func loadFixture(t *testing.T, c *Client) {
	t.Helper()
	objs := []Object{
		{ID: "src", Kind: Data, Name: "raw feed"},
		{ID: "proc", Kind: Invocation, Name: "secret analytic", Lowest: "Protected", Protect: "surrogate"},
		{ID: "out", Kind: Data, Name: "derived table"},
		{ID: "report", Kind: Data, Name: "final report"},
	}
	for _, o := range objs {
		if err := c.PutObject(o); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range []Edge{
		{From: "src", To: "proc", Label: "input-to"},
		{From: "proc", To: "out", Label: "generated"},
		{From: "out", To: "report", Label: "input-to"},
	} {
		if err := c.PutEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PutSurrogate(SurrogateSpec{ForID: "proc", ID: "proc'", Name: "an analytic", InfoScore: 0.4}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRoundTrip(t *testing.T) {
	c, _ := testServer(t)
	loadFixture(t, c)

	o, err := c.GetObject("proc")
	if err != nil {
		t.Fatal(err)
	}
	if o.Name != "secret analytic" || o.Lowest != "Protected" {
		t.Errorf("GetObject = %+v", o)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 4 || stats.Edges != 3 || stats.LogBytes == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestServerLineagePublicViewer(t *testing.T) {
	c, _ := testServer(t)
	loadFixture(t, c)

	resp, err := c.Lineage(LineageQuery{Start: "report", Direction: "ancestors"})
	if err != nil {
		t.Fatal(err)
	}
	nodeIDs := map[string]bool{}
	surrNodes := 0
	for _, n := range resp.Nodes {
		nodeIDs[n.ID] = true
		if n.Surrogate {
			surrNodes++
		}
	}
	if nodeIDs["proc"] {
		t.Error("sensitive node leaked over HTTP")
	}
	if !nodeIDs["proc'"] || surrNodes != 1 {
		t.Errorf("surrogate node missing: %+v", resp.Nodes)
	}
	foundSurrEdge := false
	for _, e := range resp.Edges {
		if e.From == "src" && e.To == "out" {
			if !e.Surrogate {
				t.Error("src->out should be flagged as surrogate edge")
			}
			foundSurrEdge = true
		}
	}
	if !foundSurrEdge {
		t.Errorf("surrogate edge missing: %+v", resp.Edges)
	}
	if resp.PathUtility <= 0 || resp.PathUtility > 1 {
		t.Errorf("pathUtility = %v", resp.PathUtility)
	}
	if resp.NodeUtility <= 0 || resp.NodeUtility > 1 {
		t.Errorf("nodeUtility = %v", resp.NodeUtility)
	}
	if resp.Timing.TotalUS < 0 {
		t.Errorf("timing = %+v", resp.Timing)
	}
}

func TestServerLineageModesAndViewers(t *testing.T) {
	c, _ := testServer(t)
	loadFixture(t, c)

	hide, err := c.Lineage(LineageQuery{Start: "report", Mode: "hide"})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range hide.Nodes {
		if n.ID == "proc'" || n.ID == "proc" {
			t.Error("hide mode returned a protected or surrogate node")
		}
	}

	full, err := c.Lineage(LineageQuery{Start: "report", Viewer: "Protected"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range full.Nodes {
		if n.ID == "proc" {
			found = true
		}
	}
	if !found {
		t.Error("privileged viewer did not get the original node")
	}
}

func TestServerErrorStatuses(t *testing.T) {
	c, s := testServer(t)
	loadFixture(t, c)

	if _, err := c.GetObject("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing object error = %v", err)
	}
	if _, err := c.Lineage(LineageQuery{Start: "nope"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing lineage start = %v", err)
	}
	if _, err := c.Lineage(LineageQuery{Start: "report", Mode: "banana"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad mode error = %v", err)
	}
	if _, err := c.Lineage(LineageQuery{Start: "report", Viewer: "Bogus"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad viewer error = %v", err)
	}
	if _, err := c.Lineage(LineageQuery{Start: "report", Direction: "sideways"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad direction error = %v", err)
	}
	if err := c.PutObject(Object{ID: "", Kind: Data}); err == nil {
		t.Error("invalid object accepted over HTTP")
	}
	if err := c.PutEdge(Edge{From: "report", To: "ghost"}); err == nil {
		t.Error("dangling edge accepted over HTTP")
	}
	_ = s
}

func TestServerRejectsWrongMethods(t *testing.T) {
	s, _ := openTemp(t)
	srv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	defer srv.Close()

	for _, tc := range []struct {
		method, path string
	}{
		{http.MethodGet, "/v1/objects"},
		{http.MethodPost, "/v1/lineage"},
		{http.MethodDelete, "/v1/stats"},
		{http.MethodPost, "/v1/objects/xyz"},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		// 405s follow the API's JSON error convention and advertise the
		// admissible methods.
		if got := resp.Header.Get("Allow"); got == "" {
			t.Errorf("%s %s: missing Allow header", tc.method, tc.path)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type = %q, want application/json", tc.method, tc.path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Errorf("%s %s: body not a JSON error: %v %+v", tc.method, tc.path, err, body)
		}
		resp.Body.Close()
	}
}

func TestServerOPMRoundTrip(t *testing.T) {
	c, _ := testServer(t)
	loadFixture(t, c)

	var buf bytes.Buffer
	if err := c.ExportOPM(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"artifacts"`) {
		t.Fatalf("export shape wrong: %s", buf.String())
	}

	// Import into a second, empty server.
	c2, s2 := testServer(t)
	if err := c2.ImportOPM(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.NumObjects() != 4 || s2.NumEdges() != 3 {
		t.Errorf("imported %d objects %d edges", s2.NumObjects(), s2.NumEdges())
	}
	o, err := c2.GetObject("proc")
	if err != nil || o.Lowest != "Protected" || o.Protect != "surrogate" {
		t.Errorf("sensitivity lost over HTTP OPM: %+v %v", o, err)
	}
	if err := c2.ImportOPM(strings.NewReader("not json")); err == nil {
		t.Error("garbage import accepted")
	}
}

func TestServerLineageFilters(t *testing.T) {
	c, _ := testServer(t)
	loadFixture(t, c)
	resp, err := c.Lineage(LineageQuery{Start: "report", Viewer: "Protected", Label: "input-to"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 2 {
		t.Errorf("label filter over HTTP: %+v", resp.Nodes)
	}
	resp, err = c.Lineage(LineageQuery{Start: "report", Viewer: "Protected", Kind: "data"})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range resp.Nodes {
		if n.ID == "proc" {
			t.Error("kind filter leaked an invocation over HTTP")
		}
	}
	if _, err := c.Lineage(LineageQuery{Start: "report", Kind: "banana"}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad kind = %v", err)
	}
}

func TestCachedServerServesAndInvalidates(t *testing.T) {
	s, _ := openTemp(t)
	engine := NewCachedEngine(NewEngine(s, privilege.TwoLevel()))
	srv := httptest.NewServer(NewCachedServer(engine))
	defer srv.Close()
	c := NewClient(srv.URL)
	loadFixture(t, c)

	r1, err := c.Lineage(LineageQuery{Start: "report"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lineage(LineageQuery{Start: "report"}); err != nil {
		t.Fatal(err)
	}
	hits, _, _ := engine.CacheStats()
	if hits == 0 {
		t.Error("second HTTP query did not hit the cache")
	}
	// Mutation invalidates; the next answer reflects the new object.
	if err := c.PutObject(Object{ID: "extra", Kind: Data, Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := c.PutEdge(Edge{From: "extra", To: "report"}); err != nil {
		t.Fatal(err)
	}
	r3, err := c.Lineage(LineageQuery{Start: "report"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Nodes) != len(r1.Nodes)+1 {
		t.Errorf("stale cached answer: %d nodes vs %d+1", len(r3.Nodes), len(r1.Nodes))
	}
}

func TestServerRejectsOversizedBody(t *testing.T) {
	s, _ := openTemp(t)
	srv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	defer srv.Close()
	big := strings.NewReader(`{"id":"x","kind":"data","name":"` + strings.Repeat("a", maxBodyBytes+10) + `"}`)
	resp, err := http.Post(srv.URL+"/v1/objects", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body = %d, want 400", resp.StatusCode)
	}
	if s.NumObjects() != 0 {
		t.Error("oversized object stored")
	}
}

func TestServerRejectsUnknownFields(t *testing.T) {
	s, _ := openTemp(t)
	srv := httptest.NewServer(NewServer(NewEngine(s, privilege.TwoLevel())))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/objects", "application/json",
		strings.NewReader(`{"id":"x","kind":"data","bogusField":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
}

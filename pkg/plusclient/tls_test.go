package plusclient

import (
	"context"
	"crypto/tls"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plus"
	"repro/internal/privilege"
)

// newTLSTestServer serves a MemBackend over HTTPS with a fresh
// self-signed cert and returns the server plus the CA file path clients
// must trust.
func newTLSTestServer(t *testing.T) (*httptest.Server, string, *plus.MemBackend) {
	t.Helper()
	dir := t.TempDir()
	certPath, keyPath, err := plus.WriteSelfSignedCert(dir)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := tls.LoadX509KeyPair(certPath, keyPath)
	if err != nil {
		t.Fatal(err)
	}
	m := plus.NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	ts := httptest.NewUnstartedServer(plus.NewServer(plus.NewEngine(m, privilege.TwoLevel())))
	ts.TLS = &tls.Config{Certificates: []tls.Certificate{pair}}
	ts.StartTLS()
	t.Cleanup(ts.Close)
	return ts, certPath, m
}

func TestNewTLSHTTPClientTrustsCustomCA(t *testing.T) {
	ts, caFile, _ := newTLSTestServer(t)

	hc, err := NewTLSHTTPClient(caFile)
	if err != nil {
		t.Fatal(err)
	}
	c := New(ts.URL, WithHTTPClient(hc))
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz over TLS with custom CA: %v", err)
	}

	// The system pool must NOT trust the self-signed chain.
	c = New(ts.URL)
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("healthz succeeded without trusting the CA")
	}
}

func TestWithCAFileOption(t *testing.T) {
	ts, caFile, _ := newTLSTestServer(t)

	c := New(ts.URL, WithCAFile(caFile))
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz with WithCAFile: %v", err)
	}
}

func TestWithCAFileBadPathSurfacesOnFirstRequest(t *testing.T) {
	c := New("http://localhost:1", WithCAFile(filepath.Join(t.TempDir(), "absent.pem")))
	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("missing CA file did not fail the request")
	}
}

func TestWithCAFileGarbageContent(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "ca.pem")
	if err := os.WriteFile(bad, []byte("not a certificate"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New("http://localhost:1", WithCAFile(bad))
	if _, err := c.Healthz(context.Background()); err == nil {
		t.Fatal("garbage CA file did not fail the request")
	}
}

// WithCAFile layered over a caller-supplied client must clone, not
// mutate: the base client must not inherit the custom trust.
func TestWithCAFileDoesNotMutateBaseClient(t *testing.T) {
	ts, caFile, _ := newTLSTestServer(t)
	base := &http.Client{Transport: &http.Transport{}}

	c := New(ts.URL, WithHTTPClient(base), WithCAFile(caFile))
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	// base still distrusts the self-signed chain; only c's clone trusts it.
	if resp, err := base.Get(ts.URL + "/v1/healthz"); err == nil {
		resp.Body.Close()
		t.Error("base client gained the custom CA trust")
	}
}

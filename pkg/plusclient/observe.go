package plusclient

import (
	"context"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// WithRequestID returns a context carrying a trace ID: every SDK call
// made with it sends the X-Plus-Request-Id header, the server threads
// the ID through its engines, request log and slow-query log, and
// echoes it on the response — one identifier correlating client and
// server views of the same request. IDs are free-form (16 hex chars by
// convention); NewRequestID mints one.
func WithRequestID(ctx context.Context, id string) context.Context {
	return obs.WithRequestID(ctx, id)
}

// RequestIDFrom reports the trace ID a context carries ("" when none).
func RequestIDFrom(ctx context.Context) string { return obs.RequestID(ctx) }

// NewRequestID mints a fresh random trace ID.
func NewRequestID() string { return obs.NewRequestID() }

// ClientMetrics instruments the SDK's transport: per-endpoint request
// counts by status, latency histograms and a transport-failure counter,
// registered on the caller's obs.Registry. Share one registry between
// an embedding application's own metrics and the SDK's.
type ClientMetrics struct {
	requests *obs.CounterVec   // endpoint, method, status
	latency  *obs.HistogramVec // endpoint
	failures *obs.Counter
}

// NewClientMetrics registers the SDK's client-side series on reg.
func NewClientMetrics(reg *obs.Registry) *ClientMetrics {
	return &ClientMetrics{
		requests: reg.CounterVec("plusclient_requests_total",
			"SDK requests by endpoint, method and status.", "endpoint", "method", "status"),
		latency: reg.HistogramVec("plusclient_request_seconds",
			"SDK request latency by endpoint.", obs.ScaleNanos, "endpoint"),
		failures: reg.Counter("plusclient_transport_failures_total",
			"SDK requests that died in transport (no HTTP status)."),
	}
}

// WithClientMetrics records every request the client makes into m. The
// hook wraps the transport, so batch, lineage, query, follow and
// session-refresh traffic all count. Order-sensitive with
// WithHTTPClient: pass WithHTTPClient first so its transport is the one
// wrapped.
func WithClientMetrics(m *ClientMetrics) Option {
	return func(c *Client) {
		if m == nil {
			return
		}
		// Wrap a copy: never mutate a caller-shared http.Client.
		hc := *c.http
		base := hc.Transport
		if base == nil {
			base = http.DefaultTransport
		}
		hc.Transport = &instrumentedTransport{next: base, m: m}
		c.http = &hc
	}
}

// metricEndpoint collapses a request path onto its route shape so label
// cardinality stays bounded (object IDs are unbounded).
func metricEndpoint(path string) string {
	if strings.HasPrefix(path, "/v2/objects/") {
		return "/v2/objects/"
	}
	if strings.HasPrefix(path, "/v1/objects/") {
		return "/v1/objects/"
	}
	return path
}

type instrumentedTransport struct {
	next http.RoundTripper
	m    *ClientMetrics
}

func (t *instrumentedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	start := time.Now()
	endpoint := metricEndpoint(req.URL.Path)
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		t.m.failures.Inc()
		return resp, err
	}
	t.m.requests.With(endpoint, req.Method, strconv.Itoa(resp.StatusCode)).Inc()
	t.m.latency.With(endpoint).ObserveSince(start)
	return resp, nil
}

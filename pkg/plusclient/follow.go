package plusclient

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/plus"
)

// EventType tags one change-feed event delivered by Changes/Follow.
type EventType string

const (
	// EventChange is one applied record; Cursor resumes after it.
	EventChange EventType = "change"
	// EventSync means the consumer is caught up to Cursor.
	EventSync EventType = "sync"
	// EventResync is synthesised by Follow after a 410: the server no
	// longer resolves the cursor, so the full snapshot in Snapshot is the
	// new base state and Cursor resumes after it. Consumers must replace
	// (not merge) their derived state with it.
	EventResync EventType = "resync"
)

// Event is one delivered change-feed event.
type Event struct {
	Type   EventType
	Cursor string
	Rev    uint64
	// Kind selects which record field is set on a change event.
	Kind      string
	Object    *plus.Object
	Edge      *plus.Edge
	Surrogate *plus.SurrogateSpec
	// Snapshot accompanies EventResync.
	Snapshot *SnapshotResponse
}

// ChangesOptions tune one Changes call.
type ChangesOptions struct {
	// Limit stops the stream after this many change events (0 = drain).
	Limit int
	// Wait holds the request open this long after catching up, waiting
	// for more writes (long poll; 0 = return at first catch-up).
	Wait time.Duration
}

// Changes drains the change feed once from cursor (empty = the beginning
// of history) and returns the events plus the cursor to resume from. A
// cursor the server no longer resolves fails with an *APIError matching
// errors.Is(err, ErrTooFarBehind); Follow automates the resync.
func (c *Client) Changes(ctx context.Context, cursor string, opts ChangesOptions) ([]Event, string, error) {
	return c.changesOnce(ctx, cursor, opts, nil)
}

// maxEventLine bounds one NDJSON event line. It matches the server's
// batch body cap (the largest record the API can have accepted), so any
// legitimately stored record streams through; a longer line is stream
// corruption, reported as a permanent error rather than retried. The
// scanner buffer grows on demand, so the cap costs nothing on normal
// streams.
const maxEventLine = 64 << 20

// permanentError marks a stream failure reconnecting cannot fix (a
// malformed or oversized event): the same bytes would arrive again.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// changesOnce runs one GET /v2/changes, invoking fn (when non-nil) per
// event as it arrives and accumulating events only when fn is nil. next
// is the last cursor seen (cursor when nothing arrived).
func (c *Client) changesOnce(ctx context.Context, cursor string, opts ChangesOptions, fn func(Event) error) ([]Event, string, error) {
	params := url.Values{}
	if cursor != "" {
		params.Set("cursor", cursor)
	}
	if opts.Limit > 0 {
		params.Set("limit", fmt.Sprint(opts.Limit))
	}
	if opts.Wait > 0 {
		params.Set("wait", opts.Wait.String())
	}
	req, err := c.newRequest(ctx, http.MethodGet, "/v2/changes?"+params.Encode(), nil)
	if err != nil {
		return nil, cursor, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, cursor, fmt.Errorf("plusclient: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return nil, cursor, err
	}

	next := cursor
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), maxEventLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &wireEvent{&ev}); err != nil {
			// A complete but malformed line: retrying replays it.
			return events, next, &permanentError{fmt.Errorf("plusclient: bad change event: %w", err)}
		}
		if fn == nil {
			events = append(events, ev)
		}
		if ev.Cursor != "" {
			next = ev.Cursor
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return events, next, &handlerError{err}
			}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return events, next, &permanentError{fmt.Errorf("plusclient: change event exceeds %d bytes: %w", maxEventLine, err)}
		}
		// A read failure mid-stream: transport trouble, retryable.
		return events, next, fmt.Errorf("plusclient: change stream: %w", err)
	}
	return events, next, nil
}

// wireEvent adapts the server's NDJSON field names onto Event.
type wireEvent struct{ ev *Event }

func (w *wireEvent) UnmarshalJSON(data []byte) error {
	var raw struct {
		Type      string              `json:"type"`
		Cursor    string              `json:"cursor"`
		Rev       uint64              `json:"rev"`
		Kind      string              `json:"kind"`
		Object    *plus.Object        `json:"object"`
		Edge      *plus.Edge          `json:"edge"`
		Surrogate *plus.SurrogateSpec `json:"surrogate"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*w.ev = Event{
		Type:      EventType(raw.Type),
		Cursor:    raw.Cursor,
		Rev:       raw.Rev,
		Kind:      raw.Kind,
		Object:    raw.Object,
		Edge:      raw.Edge,
		Surrogate: raw.Surrogate,
	}
	return nil
}

// ErrStopFollow, returned from a Follow handler, ends the loop cleanly.
var ErrStopFollow = errors.New("plusclient: stop following")

// handlerError marks an error raised by the caller's event handler, so
// the Follow loop returns it instead of treating it as a transport
// failure to retry.
type handlerError struct{ err error }

func (e *handlerError) Error() string { return e.err.Error() }
func (e *handlerError) Unwrap() error { return e.err }

// FollowStats counts a Follow loop's recoveries, so long-lived
// consumers (a read replica's apply loop) can export them. The zero
// value is ready; the counters are atomic, so reading them while Follow
// runs is race-free. One FollowStats can be shared across sequential
// Follow calls — the counters accumulate.
type FollowStats struct {
	reconnects atomic.Uint64
	resyncs    atomic.Uint64
}

// Reconnects counts transport-failure (and 503) reconnects: each backoff
// sleep before resuming from the last delivered cursor.
func (s *FollowStats) Reconnects() uint64 { return s.reconnects.Load() }

// Resyncs counts 410-triggered snapshot resyncs (EventResync deliveries,
// plus resync attempts whose snapshot fetch failed).
func (s *FollowStats) Resyncs() uint64 { return s.resyncs.Load() }

// FollowOptions tune Follow.
type FollowOptions struct {
	// Wait is the per-connection long-poll budget (default 10s). Each
	// reconnect resumes from the last delivered cursor.
	Wait time.Duration
	// DisableResync makes a 410 fatal instead of transparently fetching
	// a snapshot; consumers that cannot rebase (e.g. pure audit tails)
	// set it and handle ErrTooFarBehind themselves.
	DisableResync bool
	// MaxReconnectDelay caps the transport-failure backoff (default 2s).
	MaxReconnectDelay time.Duration
	// Stats, when non-nil, receives the loop's reconnect/resync counts.
	Stats *FollowStats
}

// backoffSleep sleeps a uniformly jittered duration in [delay/2, delay]
// — full doubling would synchronise a fleet of followers into retry
// convoys against a recovering primary — and returns the next (doubled,
// capped) delay. It reports false when ctx ended first.
func backoffSleep(ctx context.Context, delay, cap time.Duration) (time.Duration, bool) {
	d := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
	select {
	case <-ctx.Done():
		return delay, false
	case <-time.After(d):
	}
	if delay *= 2; delay > cap {
		delay = cap
	}
	return delay, true
}

// Follow streams the change feed from cursor (empty = beginning of
// history) until ctx is cancelled or the handler returns an error
// (ErrStopFollow stops cleanly and returns nil). The handler sees every
// change and sync event in order; transport failures reconnect with
// jittered exponential backoff from the last delivered cursor, and a 410
// triggers an automatic snapshot resync delivered as one EventResync
// unless DisableResync is set. Exactly-once delivery holds for change
// events across reconnects and server restarts of durable backends: the
// resume cursor always names the last event the handler saw. Recovery
// activity is counted on opts.Stats when provided.
func (c *Client) Follow(ctx context.Context, cursor string, opts FollowOptions, fn func(Event) error) error {
	if opts.Wait <= 0 {
		opts.Wait = 10 * time.Second
	}
	if opts.MaxReconnectDelay <= 0 {
		opts.MaxReconnectDelay = 2 * time.Second
	}
	stats := opts.Stats
	if stats == nil {
		stats = &FollowStats{}
	}
	cur := cursor
	delay := 50 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, next, err := c.changesOnce(ctx, cur, ChangesOptions{Wait: opts.Wait}, fn)
		cur = next
		var he *handlerError
		var pe *permanentError
		switch {
		case err == nil:
			// Clean end of one long poll: reconnect immediately.
			delay = 50 * time.Millisecond
			continue
		case errors.As(err, &he):
			if errors.Is(he.err, ErrStopFollow) {
				return nil
			}
			return he.err
		case errors.As(err, &pe):
			// Reconnecting would replay the same broken bytes.
			return pe.err
		case errors.Is(err, ErrTooFarBehind):
			if opts.DisableResync {
				return err
			}
			stats.resyncs.Add(1)
			// Back off before fetching: a consumer that cannot outrun the
			// change horizon would otherwise loop full-snapshot downloads
			// at wire speed. The delay resets on the next clean poll, so a
			// one-off resync pays ~25-50ms.
			var ok bool
			if delay, ok = backoffSleep(ctx, delay, opts.MaxReconnectDelay); !ok {
				return ctx.Err()
			}
			snap, serr := c.Snapshot(ctx)
			if serr != nil {
				return fmt.Errorf("plusclient: resync after %w: %v", err, serr)
			}
			if ferr := fn(Event{Type: EventResync, Cursor: snap.Cursor, Rev: snap.Revision, Snapshot: snap}); ferr != nil {
				if errors.Is(ferr, ErrStopFollow) {
					return nil
				}
				return ferr
			}
			cur = snap.Cursor
			continue
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.Status != http.StatusServiceUnavailable {
				// A definitive server answer (bad cursor, bad principal):
				// retrying cannot help.
				return err
			}
			// Transport failure or 503: back off and resume from the last
			// delivered cursor.
			stats.reconnects.Add(1)
			var ok bool
			if delay, ok = backoffSleep(ctx, delay, opts.MaxReconnectDelay); !ok {
				return ctx.Err()
			}
			continue
		}
	}
}

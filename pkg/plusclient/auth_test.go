package plusclient

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

// newAuthServer serves a MemBackend with REQUIRED token auth and returns
// the keyring that signs for it.
func newAuthServer(t *testing.T) (*plus.Keyring, *httptest.Server) {
	t.Helper()
	kr, err := plus.NewKeyring(plus.Key{ID: "k1", Secret: []byte("sdk-test-secret-material")})
	if err != nil {
		t.Fatal(err)
	}
	m := plus.NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	lat := privilege.TwoLevel()
	srv := plus.NewServer(plus.NewEngine(m, lat), plus.WithAuth(plus.AuthConfig{Keyring: kr, Require: true}))
	plusql.Attach(srv, plusql.NewEngine(m, lat))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return kr, ts
}

// mintOffline is the operator bootstrap: a token signed straight from
// the keyring, as `plusctl session mint` would.
func mintOffline(t *testing.T, kr *plus.Keyring, viewer string, ttl time.Duration, caps ...plus.Capability) string {
	t.Helper()
	if len(caps) == 0 {
		caps = plus.AllCapabilities()
	}
	now := time.Now()
	tok, err := kr.Mint(plus.Claims{
		Viewer: viewer, Capabilities: caps,
		IssuedAt: now.Unix(), ExpiresAt: now.Add(ttl).Unix(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

// TestAuthSmoke is the CI auth smoke case: mint a token, batch through
// it, follow the change feed with it, and watch a capability-less token
// bounce with a typed 403.
func TestAuthSmoke(t *testing.T) {
	ctx := context.Background()
	kr, ts := newAuthServer(t)

	// Bootstrap (offline mint) -> server-side attenuated session.
	boot := New(ts.URL, WithToken(mintOffline(t, kr, "Protected", time.Hour)))
	sess, err := boot.Mint(ctx, SessionRequest{Capabilities: []string{"ingest", "replicate", "query"}})
	if err != nil {
		t.Fatal(err)
	}

	// Batch with the minted session.
	c := New(ts.URL, WithToken(sess.Token))
	br, err := c.Batch(ctx, fixtureBatch())
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if br.Revision == 0 || br.Cursor == "" {
		t.Fatalf("batch response = %+v", br)
	}

	// Follow from the beginning: all 8 changes arrive.
	events, _, err := c.Changes(ctx, "", ChangesOptions{})
	if err != nil {
		t.Fatalf("changes: %v", err)
	}
	nchanges := 0
	for _, ev := range events {
		if ev.Type == EventChange {
			nchanges++
		}
	}
	if nchanges != 8 {
		t.Errorf("followed %d changes, want 8", nchanges)
	}

	// Protected lineage works through the session's viewer.
	res, err := c.Lineage(ctx, LineageRequest{Start: "report"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer != "Protected" {
		t.Errorf("lineage viewer = %q", res.Viewer)
	}

	// A query-only token cannot replicate: typed 403.
	queryOnly := New(ts.URL, WithToken(mintOffline(t, kr, "Public", time.Hour, plus.CapQuery)))
	if _, _, err := queryOnly.Changes(ctx, "", ChangesOptions{}); !errors.Is(err, ErrForbidden) {
		t.Errorf("query-only changes error = %v, want ErrForbidden", err)
	}
	if err := queryOnly.Follow(ctx, "", FollowOptions{}, func(Event) error { return nil }); !errors.Is(err, ErrForbidden) {
		t.Errorf("query-only follow error = %v, want ErrForbidden", err)
	}
	if _, err := queryOnly.Batch(ctx, fixtureBatch()); !errors.Is(err, ErrForbidden) {
		t.Errorf("query-only batch error = %v, want ErrForbidden", err)
	}

	// No token at all: typed 401.
	anon := New(ts.URL)
	if _, err := anon.Batch(ctx, fixtureBatch()); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("anonymous batch error = %v, want ErrUnauthorized", err)
	}
	var apiErr *APIError
	if _, err := anon.Lineage(ctx, LineageRequest{Start: "report"}); !errors.As(err, &apiErr) || apiErr.Code != plus.CodeUnauthorized {
		t.Errorf("anonymous lineage error = %v, want structured unauthorized", err)
	}
}

// TestSDKAutoRefresh: a client session close to expiry is transparently
// re-minted before the next request, so requests keep succeeding past
// the original token's lifetime.
func TestSDKAutoRefresh(t *testing.T) {
	ctx := context.Background()
	kr, ts := newAuthServer(t)

	c := New(ts.URL, WithToken(mintOffline(t, kr, "Protected", time.Hour)))
	if _, err := c.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}
	// A 1s session: the refresh margin clamps to 1s, so every request
	// refreshes.
	sess, err := c.Mint(ctx, SessionRequest{TTLSeconds: 1})
	if err != nil {
		t.Fatal(err)
	}
	tok0, exp0 := c.Session()
	if tok0 != sess.Token || exp0.IsZero() {
		t.Fatalf("session not adopted: %q %v", tok0, exp0)
	}

	if _, err := c.Lineage(ctx, LineageRequest{Start: "report"}); err != nil {
		t.Fatal(err)
	}
	tok1, _ := c.Session()
	if tok1 == tok0 {
		t.Error("near-expiry session was not refreshed")
	}

	// Outlive the original expiry: requests still succeed on refreshed
	// tokens.
	time.Sleep(1100 * time.Millisecond)
	if _, err := c.Lineage(ctx, LineageRequest{Start: "report"}); err != nil {
		t.Errorf("request after original expiry failed: %v", err)
	}

	// Sanity: the original 1s token itself is now dead.
	stale := New(ts.URL, WithToken(tok0))
	if _, err := stale.Lineage(ctx, LineageRequest{Start: "report"}); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("stale token error = %v, want ErrUnauthorized", err)
	}
}

// TestSDKCrossInstanceSession: a session minted against one server works
// against another sharing the keyring — the SDK needs no node affinity.
func TestSDKCrossInstanceSession(t *testing.T) {
	ctx := context.Background()
	kr, tsA := newAuthServer(t)

	// Second node, same keyring, its own backend.
	m2 := plus.NewMemBackend(4)
	t.Cleanup(func() { m2.Close() })
	srv2 := plus.NewServer(plus.NewEngine(m2, privilege.TwoLevel()),
		plus.WithAuth(plus.AuthConfig{Keyring: kr, Require: true}))
	tsB := httptest.NewServer(srv2)
	t.Cleanup(tsB.Close)

	a := New(tsA.URL, WithToken(mintOffline(t, kr, "Protected", time.Hour)))
	sess, err := a.Mint(ctx, SessionRequest{Capabilities: []string{"ingest"}})
	if err != nil {
		t.Fatal(err)
	}
	b := New(tsB.URL, WithToken(sess.Token))
	if _, err := b.Batch(ctx, fixtureBatch()); err != nil {
		t.Errorf("cross-instance batch: %v", err)
	}
}

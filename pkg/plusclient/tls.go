package plusclient

import (
	"crypto/tls"
	"crypto/x509"
	"fmt"
	"net/http"
	"os"
)

// NewTLSHTTPClient builds an *http.Client whose transport verifies
// servers against the PEM CA bundle at caFile — how tools talk to an
// https plusd serving a self-signed chain (plusd -tls-self-signed writes
// the cert.pem to hand here). plusctl's -tls-ca and the SDK's WithCAFile
// ride on it.
func NewTLSHTTPClient(caFile string) (*http.Client, error) {
	pemBytes, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("plusclient: tls ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		return nil, fmt.Errorf("plusclient: tls ca: no certificates in %s", caFile)
	}
	return httpClientWithTLS(nil, &tls.Config{RootCAs: pool}), nil
}

// httpClientWithTLS derives a client from base (nil = fresh) whose
// transport carries tc, cloning rather than mutating shared transports.
func httpClientWithTLS(base *http.Client, tc *tls.Config) *http.Client {
	out := &http.Client{}
	if base != nil {
		*out = *base
	}
	switch tr := out.Transport.(type) {
	case nil:
		dt, ok := http.DefaultTransport.(*http.Transport)
		if !ok {
			out.Transport = &http.Transport{TLSClientConfig: tc}
			break
		}
		ct := dt.Clone()
		ct.TLSClientConfig = tc
		out.Transport = ct
	case *http.Transport:
		ct := tr.Clone()
		ct.TLSClientConfig = tc
		out.Transport = ct
	default:
		// An exotic RoundTripper the package cannot rewrap; leave it and
		// trust the caller configured its TLS themselves.
	}
	return out
}

// WithTLSConfig rewraps the client's transport (compose after
// WithHTTPClient when both are given) with tc — e.g. a RootCAs pool for
// a self-signed primary, or client certificates.
func WithTLSConfig(tc *tls.Config) Option {
	return func(c *Client) { c.http = httpClientWithTLS(c.http, tc) }
}

// WithCAFile points the client's TLS verification at the PEM CA bundle
// at path, for https servers whose chain the system roots do not cover.
// A read or parse failure is deferred: it surfaces as the error of the
// first request, so New stays infallible.
func WithCAFile(path string) Option {
	return func(c *Client) {
		pemBytes, err := os.ReadFile(path)
		if err != nil {
			c.initErr = fmt.Errorf("plusclient: tls ca: %w", err)
			return
		}
		pool := x509.NewCertPool()
		if !pool.AppendCertsFromPEM(pemBytes) {
			c.initErr = fmt.Errorf("plusclient: tls ca: no certificates in %s", path)
			return
		}
		c.http = httpClientWithTLS(c.http, &tls.Config{RootCAs: pool})
	}
}

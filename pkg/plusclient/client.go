// Package plusclient is the typed Go SDK for the PLUS v2 wire API: the
// principal-scoped, batch-ingesting, cursor-resumable surface a plusd
// server mounts under /v2 (internal/plus documents the endpoints).
//
// Every method is context-first, so cancellation and deadlines propagate
// into the server's lineage and query engines. The caller's identity
// travels as the client's principal: a signed session token attached
// with WithToken (e.g. minted offline by `plusctl session mint`), a
// session established with Mint/NewSession — which the client then
// transparently re-mints before expiry — or, against servers in the
// legacy open mode, a bare viewer predicate attached with WithViewer.
// 401 and 403 answers match the ErrUnauthorized and ErrForbidden
// sentinels via errors.Is, alongside the structured *APIError.
//
//	c := plusclient.New(baseURL, plusclient.WithToken(bootToken))
//	sess, err := c.Mint(ctx, plusclient.SessionRequest{
//	    Viewer: "Public", Capabilities: []string{"query"}})
//	cur, err := c.Batch(ctx, plusclient.BatchRequest{Objects: ...})
//	res, err := c.Lineage(ctx, plusclient.LineageRequest{Start: "report"})
//
// Change-feed consumption is resumable: Follow streams deltas, hands the
// caller one durable cursor per applied event, reconnects on transport
// failures, and — when the server answers 410 (the cursor fell behind the
// retained change window or belongs to a previous life of the store) —
// transparently resyncs from GET /v2/snapshot, delivering the snapshot as
// an EventResync before resuming the stream.
package plusclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/account"
	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

// Client talks to one plusd server's v2 API. It is safe for concurrent
// use; the session state (token, expiry) is mutex-guarded so auto-refresh
// races cleanly.
type Client struct {
	base   string
	http   *http.Client
	viewer string

	// initErr holds a deferred option failure (e.g. WithCAFile on an
	// unreadable bundle): New stays infallible, and the first request
	// surfaces the problem instead of silently skipping verification.
	initErr error

	// mu guards the session fields below.
	mu sync.Mutex
	// session is the current bearer token (X-Plus-Session).
	session string
	// sessionExp is the token's expiry when known (zero for tokens
	// attached via WithToken, which the client cannot introspect safely);
	// refresh fires refreshMargin before it.
	sessionExp time.Time
	// sessionViewer / sessionCaps reproduce the session's scope so a
	// refresh mints an identically-scoped replacement.
	sessionViewer string
	sessionCaps   []string
	// refreshMargin is how long before expiry the client re-mints.
	refreshMargin time.Duration
	// refreshBackoffUntil suppresses refresh attempts after a failed
	// re-mint, so a dead credential (rotated-out key) costs one extra
	// round-trip per backoff window instead of one per request.
	refreshBackoffUntil time.Time
}

// Option configures New.
type Option func(*Client)

// WithHTTPClient substitutes the transport (default http.DefaultClient
// semantics with no global timeout; use contexts per call).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithViewer attaches a privilege-predicate principal to every request
// (the X-Plus-Viewer header). The server validates it against its
// lattice; unknown predicates fail with code "unknown_viewer".
func WithViewer(viewer string) Option { return func(c *Client) { c.viewer = viewer } }

// WithToken attaches a signed session token to every request (the
// X-Plus-Session header) — e.g. one minted offline with `plusctl session
// mint`. The client sends it as-is; call Mint or NewSession instead to
// get auto-refresh before expiry.
func WithToken(token string) Option { return func(c *Client) { c.session = token } }

// WithSessionToken is the historical name of WithToken.
func WithSessionToken(token string) Option { return WithToken(token) }

// New targets a server base URL such as "http://localhost:7337".
func New(base string, opts ...Option) *Client {
	c := &Client{base: base, http: &http.Client{}}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a structured v2 error answer. It satisfies errors.Is for
// ErrTooFarBehind when the server demanded a resync, ErrUnauthorized on
// 401s and ErrForbidden on 403s.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable failure class (plus.Code*).
	Code string
	// Message is the human-readable error.
	Message string
	// ResyncCursor / ResyncURL accompany too_far_behind answers.
	ResyncCursor string
	ResyncURL    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("plusclient: %d %s: %s", e.Status, e.Code, e.Message)
}

// Is maps well-known server answers onto the package's sentinel errors.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrTooFarBehind:
		return e.Code == plus.CodeTooFarBehind
	case ErrUnauthorized:
		return e.Status == http.StatusUnauthorized
	case ErrForbidden:
		return e.Status == http.StatusForbidden
	}
	return false
}

// ErrTooFarBehind reports that a cursor no longer resolves on the server:
// the consumer must resync from a snapshot. errors.Is(err, ErrTooFarBehind)
// matches APIErrors carrying the too_far_behind code.
var ErrTooFarBehind = errors.New("plusclient: cursor too far behind; resync from a snapshot")

// ErrUnauthorized reports a 401: the request carried no token, an
// expired token, or one no keyring key signed. Mint (or re-mint) a
// session and retry. errors.Is(err, ErrUnauthorized) matches 401
// APIErrors.
var ErrUnauthorized = errors.New("plusclient: unauthorized; mint a session token")

// ErrForbidden reports a 403: the principal is authenticated but lacks
// the capability (or privilege) the endpoint demands.
// errors.Is(err, ErrForbidden) matches 403 APIErrors.
var ErrForbidden = errors.New("plusclient: forbidden; the token lacks the required capability")

// do runs one request with the client's principal headers and decodes a
// JSON answer into out (when non-nil). Non-2xx answers come back as
// *APIError.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("plusclient: encode: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := c.newRequest(ctx, method, path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("plusclient: %w", err)
	}
	defer resp.Body.Close()
	if err := checkStatus(resp); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("plusclient: decode: %w", err)
	}
	return nil
}

func (c *Client) newRequest(ctx context.Context, method, path string, body io.Reader) (*http.Request, error) {
	if c.initErr != nil {
		return nil, c.initErr
	}
	c.maybeRefresh(ctx)
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, fmt.Errorf("plusclient: %w", err)
	}
	c.mu.Lock()
	session := c.session
	c.mu.Unlock()
	if session != "" {
		req.Header.Set(plus.HeaderSession, session)
	} else if c.viewer != "" {
		req.Header.Set(plus.HeaderViewer, c.viewer)
	}
	if id := RequestIDFrom(ctx); id != "" {
		req.Header.Set(plus.HeaderRequestID, id)
	}
	return req, nil
}

// maybeRefresh re-mints the session when it is close to expiry (within
// refreshMargin), using the current — still valid — token as the minting
// credential, so long-lived clients (change-feed followers, ingest
// daemons) never present an expired token. Refresh failures are left for
// the request itself to surface: the old token rides along and the
// server's 401 is the caller's actionable signal.
func (c *Client) maybeRefresh(ctx context.Context) {
	now := time.Now()
	c.mu.Lock()
	due := c.session != "" && !c.sessionExp.IsZero() &&
		now.After(c.refreshBackoffUntil) && c.sessionExp.Sub(now) < c.refreshMargin
	token, viewer, caps := c.session, c.sessionViewer, c.sessionCaps
	c.mu.Unlock()
	if !due {
		return
	}
	resp, err := c.mintWith(ctx, token, plus.SessionRequest{Viewer: viewer, Capabilities: caps})
	if err != nil {
		c.mu.Lock()
		c.refreshBackoffUntil = time.Now().Add(2 * time.Second)
		c.mu.Unlock()
		return
	}
	c.adoptSession(resp)
}

// mintWith runs one POST /v2/sessions authenticated by token (empty for
// the client's viewer-header or anonymous principal), bypassing the
// session state so refresh cannot recurse.
func (c *Client) mintWith(ctx context.Context, token string, req plus.SessionRequest) (plus.SessionResponse, error) {
	var resp plus.SessionResponse
	if c.initErr != nil {
		return resp, c.initErr
	}
	data, err := json.Marshal(req)
	if err != nil {
		return resp, fmt.Errorf("plusclient: encode: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v2/sessions", bytes.NewReader(data))
	if err != nil {
		return resp, fmt.Errorf("plusclient: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if token != "" {
		hreq.Header.Set(plus.HeaderSession, token)
	} else if c.viewer != "" {
		hreq.Header.Set(plus.HeaderViewer, c.viewer)
	}
	if id := RequestIDFrom(ctx); id != "" {
		hreq.Header.Set(plus.HeaderRequestID, id)
	}
	hresp, err := c.http.Do(hreq)
	if err != nil {
		return resp, fmt.Errorf("plusclient: %w", err)
	}
	defer hresp.Body.Close()
	if err := checkStatus(hresp); err != nil {
		return resp, err
	}
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return resp, fmt.Errorf("plusclient: decode: %w", err)
	}
	return resp, nil
}

// adoptSession switches the client onto a freshly minted session and
// derives the refresh margin: a quarter of the token's lifetime, clamped
// to [1s, 1m].
func (c *Client) adoptSession(resp plus.SessionResponse) {
	exp := time.Unix(resp.ExpiresAt, 0)
	margin := time.Until(exp) / 4
	if margin > time.Minute {
		margin = time.Minute
	}
	if margin < time.Second {
		margin = time.Second
	}
	c.mu.Lock()
	c.session = resp.Token
	c.sessionExp = exp
	c.sessionViewer = resp.Viewer
	c.sessionCaps = resp.Capabilities
	c.refreshMargin = margin
	c.refreshBackoffUntil = time.Time{}
	c.mu.Unlock()
}

// checkStatus turns a non-2xx response into an *APIError, decoding the
// structured v2 body when present.
func checkStatus(resp *http.Response) error {
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return nil
	}
	apiErr := &APIError{Status: resp.StatusCode}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var wire struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		ResyncCursor string `json:"resyncCursor"`
		ResyncURL    string `json:"resyncURL"`
	}
	if json.Unmarshal(data, &wire) == nil && wire.Error != "" {
		apiErr.Message = wire.Error
		apiErr.Code = wire.Code
		apiErr.ResyncCursor = wire.ResyncCursor
		apiErr.ResyncURL = wire.ResyncURL
	} else {
		apiErr.Message = resp.Status
	}
	if apiErr.Code == "" {
		apiErr.Code = fmt.Sprintf("http_%d", resp.StatusCode)
	}
	return apiErr
}

// SessionRequest / SessionResponse alias the wire session-minting shapes.
type (
	SessionRequest  = plus.SessionRequest
	SessionResponse = plus.SessionResponse
)

// Mint creates a signed stateless session scoped by req — under required
// auth the current principal can only attenuate its privileges (narrower
// viewer, capability subset; expiry slides, see plus.SessionRequest) —
// and switches the client onto the new token, auto-refreshing it before
// expiry from then on. It returns the full response so callers can
// persist or share the token.
func (c *Client) Mint(ctx context.Context, req SessionRequest) (SessionResponse, error) {
	c.maybeRefresh(ctx)
	c.mu.Lock()
	token := c.session
	c.mu.Unlock()
	resp, err := c.mintWith(ctx, token, req)
	if err != nil {
		return resp, err
	}
	c.adoptSession(resp)
	return resp, nil
}

// NewSession mints a server session bound to the viewer predicate and
// switches the client onto it: subsequent requests authenticate with the
// auto-refreshed session token instead of the viewer header. It returns
// the token so callers can persist or share it.
func (c *Client) NewSession(ctx context.Context, viewer string) (string, error) {
	resp, err := c.Mint(ctx, SessionRequest{Viewer: viewer})
	if err != nil {
		return "", err
	}
	return resp.Token, nil
}

// Session reports the client's current token and its expiry (zero when
// unknown, e.g. a WithToken credential).
func (c *Client) Session() (token string, expiresAt time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session, c.sessionExp
}

// BatchRequest aliases the wire batch: objects, edges and surrogates
// applied atomically under one revision window.
type BatchRequest = plus.BatchRequest

// BatchResponse aliases the wire answer: the post-apply revision and the
// change-feed cursor positioned at it.
type BatchResponse = plus.BatchResponse

// Batch ingests a whole unit in one request. Objects are applied before
// edges and surrogates, so intra-batch references work; a validation
// failure applies nothing.
func (c *Client) Batch(ctx context.Context, b BatchRequest) (BatchResponse, error) {
	var resp BatchResponse
	err := c.do(ctx, http.MethodPost, "/v2/batch", b, &resp)
	return resp, err
}

// PutObject stores one object (a single-record batch).
func (c *Client) PutObject(ctx context.Context, o plus.Object) error {
	_, err := c.Batch(ctx, BatchRequest{Objects: []plus.Object{o}})
	return err
}

// PutEdge stores one edge (a single-record batch).
func (c *Client) PutEdge(ctx context.Context, e plus.Edge) error {
	_, err := c.Batch(ctx, BatchRequest{Edges: []plus.Edge{e}})
	return err
}

// PutSurrogate stores one surrogate spec (a single-record batch).
func (c *Client) PutSurrogate(ctx context.Context, sp plus.SurrogateSpec) error {
	_, err := c.Batch(ctx, BatchRequest{Surrogates: []plus.SurrogateSpec{sp}})
	return err
}

// GetObject fetches one object. The fetch is principal-scoped: a record
// above the client's privilege answers 403 (code "forbidden").
func (c *Client) GetObject(ctx context.Context, id string) (plus.Object, error) {
	var o plus.Object
	err := c.do(ctx, http.MethodGet, "/v2/objects/"+url.PathEscape(id), nil, &o)
	return o, err
}

// LineageRequest is one protected lineage question. The viewer is NOT a
// field: it is the client's principal.
type LineageRequest struct {
	Start     string
	Direction string // ancestors (default) | descendants | both
	Depth     int    // 0 = unbounded
	Mode      string // surrogate (default) | hide
	Label     string // edge-label traversal filter
	Kind      string // data | invocation traversal filter
}

// Lineage runs one lineage query as the client's principal.
func (c *Client) Lineage(ctx context.Context, q LineageRequest) (*plus.LineageResponse, error) {
	params := url.Values{}
	params.Set("start", q.Start)
	if q.Direction != "" {
		params.Set("direction", q.Direction)
	}
	if q.Depth > 0 {
		params.Set("depth", fmt.Sprint(q.Depth))
	}
	if q.Mode != "" {
		params.Set("mode", q.Mode)
	}
	if q.Label != "" {
		params.Set("label", q.Label)
	}
	if q.Kind != "" {
		params.Set("kind", q.Kind)
	}
	var resp plus.LineageResponse
	if err := c.do(ctx, http.MethodGet, "/v2/lineage?"+params.Encode(), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// QueryOptions tune one PLUSQL query.
type QueryOptions struct {
	Mode    string // surrogate (default) | hide
	Limit   int    // response row cap (0 = server default)
	Explain bool   // attach the executed plan
}

// Query runs one PLUSQL query as the client's principal.
func (c *Client) Query(ctx context.Context, src string, opts QueryOptions) (*plusql.QueryResponse, error) {
	var resp plusql.QueryResponse
	err := c.do(ctx, http.MethodPost, "/v2/query", plusql.QueryRequest{
		Query: src, Mode: opts.Mode, Limit: opts.Limit, Explain: opts.Explain,
	}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// SnapshotResponse aliases the wire resync payload.
type SnapshotResponse = plus.SnapshotResponse

// Snapshot fetches the full store at one revision together with the
// cursor that resumes the change feed from it.
func (c *Client) Snapshot(ctx context.Context) (*SnapshotResponse, error) {
	var resp SnapshotResponse
	if err := c.do(ctx, http.MethodGet, "/v2/snapshot", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Restore materialises a snapshot payload as a local in-memory backend —
// a client-side replica at the snapshot's revision. Tools that need the
// whole graph (cmd/protect and cmd/audit's -server modes) build their
// account specs from it.
func Restore(snap *SnapshotResponse) (*plus.MemBackend, error) {
	m := plus.NewMemBackend(0)
	_, err := m.Apply(plus.Batch{Objects: snap.Objects, Edges: snap.Edges, Surrogates: snap.Surrogates})
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("plusclient: restore snapshot: %w", err)
	}
	return m, nil
}

// Spec fetches the server's full snapshot and rebuilds the provider-side
// account.Spec — graph, labeling, policy thresholds and surrogate
// registry over the server's own privilege lattice — exactly as the
// server's engines would assemble it. Offline analysis tools (cmd/protect
// and cmd/audit's -server modes) generate and score protected accounts
// locally from it.
func (c *Client) Spec(ctx context.Context) (*account.Spec, *privilege.Lattice, error) {
	snap, err := c.Snapshot(ctx)
	if err != nil {
		return nil, nil, err
	}
	lat, err := privilege.FromPairs(snap.Lattice)
	if err != nil {
		return nil, nil, fmt.Errorf("plusclient: server lattice: %w", err)
	}
	replica, err := Restore(snap)
	if err != nil {
		return nil, nil, err
	}
	defer replica.Close()
	sn, err := replica.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	spec, err := plus.SpecFromSnapshot(sn, lat)
	if err != nil {
		return nil, nil, fmt.Errorf("plusclient: rebuild spec: %w", err)
	}
	return spec, lat, nil
}

// Healthz probes the server's readiness endpoint (shared with v1; the
// probe is principal-free).
func (c *Client) Healthz(ctx context.Context) (plus.HealthzResponse, error) {
	var h plus.HealthzResponse
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}

package plusclient

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

// TestFollowCountsReconnects drops the first two /v2/changes attempts at
// the HTTP layer and checks Follow retries through them, counting each
// backoff on the shared stats.
func TestFollowCountsReconnects(t *testing.T) {
	m := plus.NewMemBackend(4)
	defer m.Close()
	lat := privilege.TwoLevel()
	srv := plus.NewServer(plus.NewEngine(m, lat))
	plusql.Attach(srv, plusql.NewEngine(m, lat))

	var failures atomic.Int64
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v2/changes" && failures.Add(1) <= 2 {
			// Slam the connection: a transport-level failure, not an API
			// answer.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		srv.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	c := New(ts.URL)
	if _, err := m.Apply(plus.Batch{Objects: []plus.Object{{ID: "a", Kind: plus.Data, Name: "x"}}}); err != nil {
		t.Fatal(err)
	}

	var stats FollowStats
	var changes atomic.Int64
	err := c.Follow(context.Background(), "", FollowOptions{
		Wait:              50 * time.Millisecond,
		MaxReconnectDelay: 20 * time.Millisecond,
		Stats:             &stats,
	}, func(ev Event) error {
		if ev.Type == EventChange {
			changes.Add(1)
		}
		if ev.Type == EventSync {
			return ErrStopFollow
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Reconnects(); got != 2 {
		t.Errorf("reconnects = %d, want 2", got)
	}
	if stats.Resyncs() != 0 {
		t.Errorf("resyncs = %d, want 0", stats.Resyncs())
	}
	if changes.Load() != 1 {
		t.Errorf("changes = %d, want 1", changes.Load())
	}
}

// TestFollowCountsResyncs shrinks the change horizon so a stale cursor
// 410s, and checks Follow resyncs exactly once and counts it.
func TestFollowCountsResyncs(t *testing.T) {
	m := plus.NewMemBackend(1)
	defer m.Close()
	lat := privilege.TwoLevel()
	srv := plus.NewServer(plus.NewEngine(m, lat))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(ts.URL)

	// Write, capture the early cursor, then push it past the horizon.
	if _, err := m.Apply(plus.Batch{Objects: []plus.Object{{ID: "o0", Kind: plus.Data, Name: "x"}}}); err != nil {
		t.Fatal(err)
	}
	evs, early, err := c.Changes(context.Background(), "", ChangesOptions{})
	if err != nil || len(evs) == 0 {
		t.Fatalf("changes: %v (%d events)", err, len(evs))
	}
	m.SetChangeHorizon(4)
	for i := 0; i < 64; i++ {
		if _, err := m.Apply(plus.Batch{Objects: []plus.Object{{ID: "o" + string(rune('A'+i%26)) + string(rune('a'+i/26)), Kind: plus.Data, Name: "x"}}}); err != nil {
			t.Fatal(err)
		}
	}

	var stats FollowStats
	sawResync := false
	err = c.Follow(context.Background(), early, FollowOptions{
		Wait:              50 * time.Millisecond,
		MaxReconnectDelay: 20 * time.Millisecond,
		Stats:             &stats,
	}, func(ev Event) error {
		switch ev.Type {
		case EventResync:
			sawResync = true
			if ev.Snapshot == nil || len(ev.Snapshot.Objects) != 65 {
				t.Errorf("resync snapshot = %+v", ev.Snapshot)
			}
		case EventSync:
			return ErrStopFollow
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sawResync {
		t.Error("no EventResync delivered")
	}
	if got := stats.Resyncs(); got != 1 {
		t.Errorf("resyncs = %d, want 1", got)
	}
}

// backoffSleep must jitter within [delay/2, delay], double up to the cap,
// and bail out promptly on context cancellation.
func TestBackoffSleepBoundsAndCap(t *testing.T) {
	ctx := context.Background()
	delay := 20 * time.Millisecond
	cap := 50 * time.Millisecond
	start := time.Now()
	next, ok := backoffSleep(ctx, delay, cap)
	elapsed := time.Since(start)
	if !ok {
		t.Fatal("backoffSleep reported cancellation")
	}
	if elapsed < delay/2-time.Millisecond || elapsed > delay+25*time.Millisecond {
		t.Errorf("slept %v, want within [%v, %v]", elapsed, delay/2, delay)
	}
	if next != 40*time.Millisecond {
		t.Errorf("next delay = %v, want 40ms", next)
	}
	if next, _ = backoffSleep(ctx, next, cap); next != cap {
		t.Errorf("capped delay = %v, want %v", next, cap)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, ok := backoffSleep(cancelled, time.Hour, time.Hour); ok {
		t.Error("cancelled context did not stop the sleep")
	}
}

package plusclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

// newTestServer serves a fresh MemBackend over the full API (v1 + v2 +
// PLUSQL) and returns the SDK client pointed at it.
func newTestServer(t *testing.T, opts ...Option) (*Client, *plus.MemBackend, *httptest.Server) {
	t.Helper()
	m := plus.NewMemBackend(4)
	t.Cleanup(func() { m.Close() })
	lat := privilege.TwoLevel()
	srv := plus.NewServer(plus.NewEngine(m, lat))
	plusql.Attach(srv, plusql.NewEngine(m, lat))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return New(ts.URL, opts...), m, ts
}

func fixtureBatch() BatchRequest {
	return BatchRequest{
		Objects: []plus.Object{
			{ID: "src", Kind: plus.Data, Name: "raw feed"},
			{ID: "proc", Kind: plus.Invocation, Name: "secret analytic", Lowest: "Protected", Protect: "surrogate"},
			{ID: "out", Kind: plus.Data, Name: "derived table"},
			{ID: "report", Kind: plus.Data, Name: "final report"},
		},
		Edges: []plus.Edge{
			{From: "src", To: "proc", Label: "input-to"},
			{From: "proc", To: "out", Label: "generated"},
			{From: "out", To: "report", Label: "input-to"},
		},
		Surrogates: []plus.SurrogateSpec{
			{ForID: "proc", ID: "proc'", Name: "an analytic", InfoScore: 0.4},
		},
	}
}

func TestSDKBatchLineageQuery(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newTestServer(t, WithViewer("Protected"))

	br, err := c.Batch(ctx, fixtureBatch())
	if err != nil {
		t.Fatal(err)
	}
	if br.Revision != 8 || br.Cursor == "" {
		t.Fatalf("batch response = %+v", br)
	}

	res, err := c.Lineage(ctx, LineageRequest{Start: "report"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer != "Protected" {
		t.Errorf("lineage viewer = %q", res.Viewer)
	}
	seenProc := false
	for _, n := range res.Nodes {
		if n.ID == "proc" {
			seenProc = true
		}
	}
	if !seenProc {
		t.Error("protected principal did not see the original node")
	}

	qr, err := c.Query(ctx, `ancestor*(X, "report"), kind(X, invocation)`, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Rows[0][0].ID != "proc" {
		t.Errorf("query rows = %+v", qr.Rows)
	}

	o, err := c.GetObject(ctx, "proc")
	if err != nil || o.Name != "secret analytic" {
		t.Errorf("GetObject = %+v, %v", o, err)
	}

	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" {
		t.Errorf("healthz = %+v, %v", h, err)
	}
}

func TestSDKPrincipalErrors(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newTestServer(t, WithViewer("Bogus"))
	if _, err := c.Batch(ctx, fixtureBatch()); err == nil {
		t.Fatal("unknown viewer accepted")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Code != plus.CodeUnknownViewer || apiErr.Status != http.StatusBadRequest {
			t.Errorf("error = %v", err)
		}
	}

	// Public principal cannot fetch the protected record.
	pub, _, _ := newTestServer(t)
	if _, err := pub.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}
	_, err := pub.GetObject(ctx, "proc")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusForbidden {
		t.Errorf("protected fetch as Public = %v", err)
	}
}

func TestSDKSession(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newTestServer(t)
	if _, err := c.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}
	token, err := c.NewSession(ctx, "Protected")
	if err != nil {
		t.Fatal(err)
	}
	if token == "" {
		t.Fatal("empty session token")
	}
	res, err := c.Lineage(ctx, LineageRequest{Start: "report"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Viewer != "Protected" {
		t.Errorf("session principal = %q", res.Viewer)
	}
	// A second client reusing the token gets the same principal.
	c2 := New(c.base, WithSessionToken(token), WithHTTPClient(c.http))
	res, err = c2.Lineage(ctx, LineageRequest{Start: "report"})
	if err != nil || res.Viewer != "Protected" {
		t.Errorf("shared token lineage = %+v, %v", res, err)
	}
}

func TestSDKChangesAndResume(t *testing.T) {
	ctx := context.Background()
	c, m, _ := newTestServer(t)
	if _, err := c.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}

	evs, cur, err := c.Changes(ctx, "", ChangesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	changes := 0
	for _, ev := range evs {
		if ev.Type == EventChange {
			changes++
		}
	}
	if changes != 8 {
		t.Fatalf("drained %d changes, want 8", changes)
	}

	if err := m.PutObject(plus.Object{ID: "extra", Kind: plus.Data}); err != nil {
		t.Fatal(err)
	}
	evs, _, err = c.Changes(ctx, cur, ChangesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, ev := range evs {
		if ev.Type == EventChange {
			got = append(got, ev.Object.ID)
		}
	}
	if len(got) != 1 || got[0] != "extra" {
		t.Errorf("resumed changes = %v", got)
	}
}

// TestSDKFollowExactlyOnceAcrossRestart is the acceptance scenario: batch
// in, follow with no cursor, disconnect, restart the LogBackend-backed
// server, resume from the held cursor — every change delivered exactly
// once, none lost, none repeated.
func TestSDKFollowExactlyOnceAcrossRestart(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "plus.log")

	// The outer test server survives "restarts": the inner plus server is
	// swapped when the backend is reopened, like a daemon coming back on
	// the same address.
	var inner atomic.Pointer[plus.Server]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.Load().ServeHTTP(w, r)
	}))
	defer ts.Close()

	openServer := func() *plus.LogBackend {
		b, err := plus.Open(path, plus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		inner.Store(plus.NewServer(plus.NewEngine(b, privilege.TwoLevel())))
		return b
	}

	b := openServer()
	c := New(ts.URL)
	if _, err := c.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}

	// Phase 1: follow from the beginning, stop after 5 changes.
	type delivery struct {
		rev    uint64
		cursor string
	}
	var seen []delivery
	err := c.Follow(ctx, "", FollowOptions{Wait: time.Millisecond}, func(ev Event) error {
		if ev.Type != EventChange {
			return nil
		}
		seen = append(seen, delivery{ev.Rev, ev.Cursor})
		if len(seen) == 5 {
			return ErrStopFollow
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("phase 1 delivered %d changes", len(seen))
	}

	// Restart: close the backend, reopen the log, swap the server in.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b = openServer()
	defer b.Close()

	// More writes after the restart.
	if err := b.PutObject(plus.Object{ID: "post", Kind: plus.Data, Name: "post-restart"}); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume from the held cursor; expect revisions 6..9 exactly.
	var resumed []uint64
	err = c.Follow(ctx, seen[4].cursor, FollowOptions{Wait: time.Millisecond}, func(ev Event) error {
		switch ev.Type {
		case EventResync:
			t.Fatal("durable cursor should not need a resync")
		case EventChange:
			resumed = append(resumed, ev.Rev)
			if ev.Rev == 9 {
				return ErrStopFollow
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{6, 7, 8, 9}
	if len(resumed) != len(want) {
		t.Fatalf("resumed revisions = %v, want %v", resumed, want)
	}
	for i := range want {
		if resumed[i] != want[i] {
			t.Fatalf("gap or duplicate: resumed %v, want %v", resumed, want)
		}
	}
}

// TestSDKFollowAutoResync drops the consumer past the MemBackend change
// horizon and requires Follow to rebase through one snapshot resync, then
// keep streaming.
func TestSDKFollowAutoResync(t *testing.T) {
	ctx := context.Background()
	c, m, _ := newTestServer(t)
	if _, err := c.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}
	// Age the beginning of history out of the retained window.
	m.SetChangeHorizon(1)

	var resync *Event
	var after []uint64
	err := c.Follow(ctx, "", FollowOptions{Wait: time.Millisecond}, func(ev Event) error {
		switch ev.Type {
		case EventResync:
			if resync != nil {
				t.Fatal("resynced twice")
			}
			e := ev
			resync = &e
			// Write one more record so the stream has something after the
			// rebase.
			if err := m.PutObject(plus.Object{ID: "fresh", Kind: plus.Data}); err != nil {
				t.Fatal(err)
			}
		case EventChange:
			after = append(after, ev.Rev)
			return ErrStopFollow
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if resync == nil {
		t.Fatal("no resync event")
	}
	if resync.Snapshot == nil || len(resync.Snapshot.Objects) != 4 {
		t.Fatalf("resync snapshot = %+v", resync.Snapshot)
	}
	if len(after) != 1 || after[0] != 9 {
		t.Errorf("post-resync changes = %v, want [9]", after)
	}

	// DisableResync surfaces the typed error instead.
	err = c.Follow(ctx, "", FollowOptions{Wait: time.Millisecond, DisableResync: true}, func(ev Event) error { return nil })
	if !errors.Is(err, ErrTooFarBehind) {
		t.Errorf("DisableResync error = %v, want ErrTooFarBehind", err)
	}
}

func TestSDKRestoreSnapshot(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newTestServer(t)
	if _, err := c.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	replica, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if replica.NumObjects() != 4 || replica.NumEdges() != 3 {
		t.Errorf("replica = %d objects %d edges", replica.NumObjects(), replica.NumEdges())
	}
	if o, err := replica.GetObject("proc"); err != nil || o.Lowest != "Protected" {
		t.Errorf("replica object = %+v, %v", o, err)
	}
	if len(snap.Lattice) == 0 {
		t.Error("snapshot lattice missing")
	}
	if _, err := privilege.FromPairs(snap.Lattice); err != nil {
		t.Errorf("snapshot lattice does not parse: %v", err)
	}
}

func TestSDKContextCancellation(t *testing.T) {
	c, _, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Batch(ctx, fixtureBatch()); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled batch = %v", err)
	}
	if err := c.Follow(ctx, "", FollowOptions{}, func(Event) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled follow = %v", err)
	}
}

// TestSDKFollowSurvivesTransportBlips kills the connection mid-stream and
// expects Follow to reconnect from the held cursor without duplicating
// deliveries.
func TestSDKFollowSurvivesTransportBlips(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m := plus.NewMemBackend(2)
	defer m.Close()
	srv := plus.NewServer(plus.NewEngine(m, privilege.TwoLevel()))

	// Fail every other request at the transport level.
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 1 {
			if hj, ok := w.(http.Hijacker); ok {
				conn, _, _ := hj.Hijack()
				conn.Close()
				return
			}
		}
		srv.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL)
	if err := m.PutObject(plus.Object{ID: "a", Kind: plus.Data}); err != nil {
		t.Fatal(err)
	}
	if err := m.PutObject(plus.Object{ID: "b", Kind: plus.Data}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var revs []uint64
	err := c.Follow(ctx, "", FollowOptions{Wait: time.Millisecond}, func(ev Event) error {
		if ev.Type != EventChange {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		revs = append(revs, ev.Rev)
		if len(revs) == 2 {
			return ErrStopFollow
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(revs) != 2 || revs[0] != 1 || revs[1] != 2 {
		t.Errorf("delivered revisions = %v, want [1 2]", revs)
	}
}

// TestV1V2ParitySmoke is the cross-surface conformance check CI runs: the
// same lineage question and the same PLUSQL query through /v1 and /v2
// must produce semantically identical answers.
func TestV1V2ParitySmoke(t *testing.T) {
	ctx := context.Background()
	sdk, _, ts := newTestServer(t)
	if _, err := sdk.Batch(ctx, fixtureBatch()); err != nil {
		t.Fatal(err)
	}
	v1 := plus.NewClient(ts.URL)

	for _, viewer := range []string{"Public", "Protected"} {
		v1resp, err := v1.Lineage(plus.LineageQuery{Start: "report", Viewer: viewer})
		if err != nil {
			t.Fatal(err)
		}
		v2c := New(ts.URL, WithViewer(viewer))
		v2resp, err := v2c.Lineage(ctx, LineageRequest{Start: "report"})
		if err != nil {
			t.Fatal(err)
		}
		v1resp.Timing, v2resp.Timing = plus.LineageTiming{}, plus.LineageTiming{}
		a, _ := json.Marshal(v1resp)
		b, _ := json.Marshal(v2resp)
		if string(a) != string(b) {
			t.Errorf("viewer %s lineage parity broken:\nv1 %s\nv2 %s", viewer, a, b)
		}

		v1q, err := plusql.ClientQuery(v1, plusql.QueryRequest{Query: `node(X)`, Viewer: viewer})
		if err != nil {
			t.Fatal(err)
		}
		v2q, err := v2c.Query(ctx, `node(X)`, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v1q.TookUS, v2q.TookUS = 0, 0
		// Phase timings are nondeterministic (and the repeat run hits
		// the warm view cache); parity is about the answer, not the
		// telemetry.
		v1q.Phases, v2q.Phases = nil, nil
		qa, _ := json.Marshal(v1q)
		qb, _ := json.Marshal(v2q)
		if string(qa) != string(qb) {
			t.Errorf("viewer %s query parity broken:\nv1 %s\nv2 %s", viewer, qa, qb)
		}
	}
}

// TestFollowStopsOnCorruptStream serves garbage NDJSON and expects Follow
// to fail fast instead of reconnecting into the same broken bytes forever.
func TestFollowStopsOnCorruptStream(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write([]byte("{not json}\n"))
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := New(ts.URL).Follow(ctx, "", FollowOptions{}, func(Event) error { return nil })
	if err == nil || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("corrupt stream: err = %v, want a fast permanent failure", err)
	}
	if !strings.Contains(err.Error(), "bad change event") {
		t.Errorf("err = %v", err)
	}
}

package main

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/plus"
)

// TestPrintStatusReplicaBlock renders the replication section of plusctl
// status for a follower's healthz payload.
func TestPrintStatusReplicaBlock(t *testing.T) {
	h := plus.HealthzResponse{
		Status: "ok", Objects: 5, Edges: 3, Revision: 40,
		Replica: &plus.ReplicaHealth{
			Role: "follower", Primary: "https://primary:7337", State: "following",
			AppliedRev: 38, PrimaryRev: 40, LagRevisions: 2, LagSeconds: 0.4,
			Applied: 120, Batches: 9, ApplyPerSec: 33.5,
			Resyncs: 1, Reconnects: 2,
		},
	}
	out := captureStatus(t, h)
	for _, want := range []string{
		"replication", "follower of https://primary:7337 (following)",
		"applied", "38 of 40 (lag 2 revisions, 0.4s)",
		"120 events in 9 batches, 33.5/s",
		"1 resyncs, 2 reconnects",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

// A primary's payload has no replica block and status must not render one.
func TestPrintStatusNoReplicaBlockOnPrimary(t *testing.T) {
	out := captureStatus(t, plus.HealthzResponse{Status: "ok"})
	if strings.Contains(out, "replication") {
		t.Errorf("primary status rendered a replication block:\n%s", out)
	}
}

func captureStatus(t *testing.T, h plus.HealthzResponse) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := printStatus(w, h); err != nil {
		t.Fatal(err)
	}
	w.Close()
	buf := make([]byte, 8192)
	n, _ := r.Read(buf)
	return string(buf[:n])
}

// TestReplicaExit covers the -max-lag probe semantics: only a follower
// continuously behind for longer than the bound (or one whose
// replication stopped) turns status into a non-zero exit.
func TestReplicaExit(t *testing.T) {
	lagging := &plus.ReplicaHealth{State: "following", LagRevisions: 7, LagSeconds: 12.5}
	cases := []struct {
		name    string
		h       plus.HealthzResponse
		maxLag  time.Duration
		wantErr string
	}{
		{"primary payload is exempt", plus.HealthzResponse{}, time.Second, ""},
		{"zero max-lag disables the probe", plus.HealthzResponse{Replica: lagging}, 0, ""},
		{"caught-up follower passes",
			plus.HealthzResponse{Replica: &plus.ReplicaHealth{State: "following"}}, time.Second, ""},
		{"briefly-behind follower passes",
			plus.HealthzResponse{Replica: &plus.ReplicaHealth{State: "following", LagRevisions: 3, LagSeconds: 0.2}},
			time.Second, ""},
		{"stalled follower fails",
			plus.HealthzResponse{Replica: lagging}, time.Second, "follower stalled"},
		{"failed follower fails regardless of lag",
			plus.HealthzResponse{Replica: &plus.ReplicaHealth{State: "failed"}}, time.Second, "follower failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := replicaExit(tc.h, tc.maxLag)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("replicaExit = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("replicaExit = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

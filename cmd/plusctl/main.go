// Command plusctl is the CLI client for a plusd server.
//
// Usage:
//
//	plusctl [-server http://localhost:7337] [-token T] [-tls-ca ca.pem] <command> [args]
//
// Commands:
//
//	put-object -id ID -kind data|invocation -name NAME [-lowest P] [-protect surrogate|hide]
//	put-edge -from ID -to ID [-label L] [-protect-at P] [-protect-mode surrogate|hide]
//	put-surrogate -for ID -id ID -name NAME [-lowest P] [-score F]
//	get ID
//	lineage -start ID [-direction ancestors|descendants|both] [-depth N] [-viewer P] [-mode surrogate|hide] [-label L] [-kind data|invocation]
//	query [-viewer P] [-mode surrogate|hide] [-limit N] [-format table|json] [-explain] 'PLUSQL'
//	batch [-viewer P] [-token T] [-file batch.json]
//	follow [-viewer P] [-token T] [-cursor C] [-tail] [-wait D] [-max N] [-no-resync]
//	session mint -keys keyring -viewer P [-caps ingest,query] [-ttl 1h] [-key ID]
//	session inspect [-keys keyring] TOKEN
//	stats
//	top [-interval 2s] [-n N] [-once]
//	slowlog
//	healthz
//	export-opm
//	import-opm [-file doc.json]
//
// top polls GET /v2/metrics?format=json and renders a live operator
// table (store gauges, cache efficiency, per-route traffic and latency
// quantiles, backend and engine phase timings); slowlog dumps the
// server's slow-query ring (populated when plusd runs with
// -slow-query). Both need the admin capability on an authenticated
// server.
//
// batch and follow speak the v2 API through the Go SDK (pkg/plusclient):
// batch ingests a {"objects": [...], "edges": [...], "surrogates": [...]}
// document atomically and prints the resulting revision and change-feed
// cursor; follow streams the change feed as JSON lines, resuming from
// -cursor, and exits at the first catch-up unless -tail keeps it
// attached. Any non-2xx server answer exits non-zero.
//
// session mint signs a stateless session token offline from a keyring
// file (one "id:secret" line per key, first key signs) — the operator's
// bootstrap for a plusd running with -auth-keys. session inspect decodes
// a token's claims and, given the keyring, verifies its signature and
// expiry. The global -token (before the subcommand) authenticates every
// subcommand — v1 and v2 alike — as the X-Plus-Session header; the
// batch/follow -token flag overrides it per call.
//
// The global -tls-ca verifies an https server against a custom PEM CA
// bundle — the cert.pem a plusd running with -tls-self-signed serves
// with.
//
// status renders the healthz payload as an operator summary; against a
// follower (plusd -follow) it includes the replication block — role,
// primary, applied/primary revision, lag, resyncs — and -max-lag D
// exits non-zero when the follower is stalled more than D behind the
// primary, so probes can evict it from a read pool.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/pkg/plusclient"
)

// commands lists every subcommand with a one-line synopsis; the usage
// listing and the dispatcher's unknown-command error are built from it.
var commands = []struct{ name, synopsis string }{
	{"put-object", `put-object -id ID -kind data|invocation -name NAME [-lowest P] [-protect surrogate|hide]`},
	{"put-edge", `put-edge -from ID -to ID [-label L] [-protect-at P] [-protect-mode surrogate|hide]`},
	{"put-surrogate", `put-surrogate -for ID -id ID -name NAME [-lowest P] [-score F]`},
	{"get", `get ID`},
	{"lineage", `lineage -start ID [-direction ancestors|descendants|both] [-depth N] [-viewer P] [-mode surrogate|hide] [-label L] [-kind data|invocation]`},
	{"query", `query [-viewer P] [-mode surrogate|hide] [-limit N] [-format table|json] [-explain] 'PLUSQL query'`},
	{"batch", `batch [-viewer P] [-token T] [-file batch.json]`},
	{"follow", `follow [-viewer P] [-token T] [-cursor C] [-tail] [-wait D] [-max N] [-no-resync]`},
	{"session", `session mint -keys keyring -viewer P [-caps ingest,replicate,query,admin] [-ttl 1h] [-key ID] | session inspect [-keys keyring] TOKEN`},
	{"stats", `stats`},
	{"status", `status [-max-lag D]`},
	{"top", `top [-interval 2s] [-n N] [-once]`},
	{"slowlog", `slowlog`},
	{"healthz", `healthz`},
	{"export-opm", `export-opm`},
	{"import-opm", `import-opm [-file doc.json]`},
}

// usageListing renders the full subcommand reference printed on unknown
// or missing subcommands.
func usageListing() string {
	var sb strings.Builder
	sb.WriteString("usage: plusctl [-server URL] [-token T] [-tls-ca ca.pem] <command> [args]\n\ncommands:\n")
	for _, c := range commands {
		sb.WriteString("  " + c.synopsis + "\n")
	}
	return sb.String()
}

func usage() {
	fmt.Fprint(os.Stderr, usageListing())
	os.Exit(2)
}

func synopsisOf(name string) string {
	for _, c := range commands {
		if c.name == name {
			return c.synopsis
		}
	}
	return name
}

// printQueryTable renders a query answer as an aligned table: one column
// per variable, surrogate bindings marked with "~", followed by a row
// count and the work counters (and the plan under -explain).
func printQueryTable(w *os.File, resp *plusql.QueryResponse) error {
	if resp.Plan != "" {
		fmt.Fprint(w, resp.Plan)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(resp.Vars, "\t"))
	for _, row := range resp.Rows {
		cells := make([]string, len(row))
		for i, b := range row {
			cell := b.ID
			if b.Surrogate {
				cell += "~"
			}
			if b.Name != "" {
				cell += " (" + b.Name + ")"
			}
			cells[i] = cell
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	more := ""
	if resp.Truncated {
		more = " (truncated: more rows available, raise -limit)"
	}
	fmt.Fprintf(w, "%d row(s)%s, %d candidate(s) examined, %dus\n",
		resp.Stats.Rows, more, resp.Stats.Examined, resp.TookUS)
	return nil
}

// printStatus renders the healthz payload as a human-readable summary:
// store counts plus the delta-scoped cache counters of the lineage answer
// cache and the PLUSQL view cache.
func printStatus(w *os.File, h plus.HealthzResponse) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "status\t%s\n", h.Status)
	fmt.Fprintf(tw, "objects\t%d\n", h.Objects)
	fmt.Fprintf(tw, "edges\t%d\n", h.Edges)
	fmt.Fprintf(tw, "revision\t%d\n", h.Revision)
	if lc := h.LineageCache; lc != nil {
		fmt.Fprintf(tw, "lineage cache\t%d entries, %d hits, %d misses\n",
			lc.Entries, lc.Hits, lc.Misses)
		fmt.Fprintf(tw, "  delta scoping\t%d evicted, %d full wipes\n",
			lc.DeltaEvictions, lc.Wipes)
	}
	if qc := h.QueryCache; qc != nil {
		fmt.Fprintf(tw, "query views\t%d cached, %d hits, %d misses\n",
			qc.Views, qc.Hits, qc.Misses)
		fmt.Fprintf(tw, "  refresh\t%d advanced, %d advance-rebuilds, %d full builds, %d fallbacks\n",
			qc.Advanced, qc.AdvanceRebuilds, qc.FullBuilds, qc.Fallbacks)
	}
	if ix := h.Index; ix != nil {
		fmt.Fprintf(tw, "indexes\t%d kind, %d name, %d attr entries (rev %d)\n",
			ix.KindEntries, ix.NameEntries, ix.AttrEntries, ix.Rev)
		fmt.Fprintf(tw, "  probes\t%d hits, %d misses, %d advances, %d rebuilds\n",
			ix.Hits, ix.Misses, ix.Advances, ix.Rebuilds)
	}
	if in := h.Intern; in != nil {
		fmt.Fprintf(tw, "intern table\t%d strings, %d bytes\n", in.Strings, in.Bytes)
	}
	if rep := h.Replica; rep != nil {
		fmt.Fprintf(tw, "replication\t%s of %s (%s)\n", rep.Role, rep.Primary, rep.State)
		fmt.Fprintf(tw, "  applied\t%d of %d (lag %d revisions, %.1fs)\n",
			rep.AppliedRev, rep.PrimaryRev, rep.LagRevisions, rep.LagSeconds)
		fmt.Fprintf(tw, "  apply\t%d events in %d batches, %.1f/s\n",
			rep.Applied, rep.Batches, rep.ApplyPerSec)
		fmt.Fprintf(tw, "  recovery\t%d resyncs, %d reconnects\n", rep.Resyncs, rep.Reconnects)
	}
	return tw.Flush()
}

// replicaExit turns a stalled follower into a non-zero exit for probes:
// a replica present in the payload and continuously behind the primary
// for longer than maxLag fails the status command.
func replicaExit(h plus.HealthzResponse, maxLag time.Duration) error {
	if maxLag <= 0 || h.Replica == nil {
		return nil
	}
	rep := h.Replica
	if rep.State == "failed" {
		return fmt.Errorf("follower failed (replication stopped)")
	}
	if rep.LagRevisions > 0 && rep.LagSeconds > maxLag.Seconds() {
		return fmt.Errorf("follower stalled: %d revisions behind for %.1fs (max-lag %s)",
			rep.LagRevisions, rep.LagSeconds, maxLag)
	}
	return nil
}

func printJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// sdkClient builds the v2 SDK client for the same server the v1 client
// targets, with an optional viewer and/or signed-token principal; an
// empty token falls back to the global -token attached to c.
func sdkClient(c *plus.Client, viewer, token string) *plusclient.Client {
	var opts []plusclient.Option
	if viewer != "" {
		opts = append(opts, plusclient.WithViewer(viewer))
	}
	if token == "" {
		token = c.Token()
	}
	if token != "" {
		opts = append(opts, plusclient.WithToken(token))
	}
	// Inherit the v1 client's transport so -tls-ca trust applies to the
	// SDK surface too.
	opts = append(opts, plusclient.WithHTTPClient(c.HTTPClient()))
	return plusclient.New(c.BaseURL(), opts...)
}

// sessionMint signs a token offline from a keyring file.
func sessionMint(rest []string) error {
	fs := flag.NewFlagSet("session mint", flag.ExitOnError)
	keys := fs.String("keys", "", "keyring file (id:secret per line, first key signs)")
	viewer := fs.String("viewer", "", "privilege-predicate the token acts as (required)")
	caps := fs.String("caps", "", "comma-separated capabilities (default: all)")
	ttl := fs.Duration("ttl", time.Hour, "token lifetime")
	keyID := fs.String("key", "", "sign with this key id instead of the active (first) key")
	_ = fs.Parse(rest)
	if *keys == "" || *viewer == "" {
		return fmt.Errorf("usage: plusctl %s", synopsisOf("session"))
	}
	if *ttl <= 0 {
		return fmt.Errorf("-ttl must be positive (got %s)", *ttl)
	}
	kr, err := plus.LoadKeyring(*keys)
	if err != nil {
		return err
	}
	capList := plus.AllCapabilities()
	if *caps != "" {
		capList, err = plus.ParseCapabilities(strings.Split(*caps, ","))
		if err != nil {
			return err
		}
		if len(capList) == 0 {
			return fmt.Errorf("empty capability list")
		}
	}
	now := time.Now()
	token, err := kr.Mint(plus.Claims{
		Viewer:       *viewer,
		Capabilities: capList,
		IssuedAt:     now.Unix(),
		ExpiresAt:    now.Add(*ttl).Unix(),
		KeyID:        *keyID,
	})
	if err != nil {
		return err
	}
	fmt.Println(token)
	return nil
}

// sessionInspect decodes (and, with -keys, verifies) a token.
func sessionInspect(rest []string) error {
	fs := flag.NewFlagSet("session inspect", flag.ExitOnError)
	keys := fs.String("keys", "", "keyring file to verify the signature against")
	_ = fs.Parse(rest)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: plusctl %s", synopsisOf("session"))
	}
	token := fs.Arg(0)
	claims, err := plus.DecodeTokenClaims(token)
	if err != nil {
		return err
	}
	out := struct {
		plus.Claims
		ExpiresAtTime string `json:"expiresAtTime"`
		Expired       bool   `json:"expired"`
		Signature     string `json:"signature"`
	}{
		Claims:        claims,
		ExpiresAtTime: claims.Expiry().UTC().Format(time.RFC3339),
		Expired:       !time.Now().Before(claims.Expiry()),
		Signature:     "unverified (no -keys)",
	}
	var verifyErr error
	if *keys != "" {
		kr, err := plus.LoadKeyring(*keys)
		if err != nil {
			return err
		}
		if _, verr := kr.Verify(token, time.Now()); verr != nil {
			out.Signature = "INVALID: " + verr.Error()
			verifyErr = fmt.Errorf("token does not verify against %s", *keys)
		} else {
			out.Signature = "valid (key " + claims.KeyID + ")"
		}
	}
	if err := printJSON(out); err != nil {
		return err
	}
	// Scripts keying on the exit code must see a failed verification.
	return verifyErr
}

// healthzExit turns a degraded probe answer into a non-zero exit: the
// payload printed fine, but scripts keying on the exit code must see the
// failure (a 503 probe answer used to exit 0).
func healthzExit(h plus.HealthzResponse) error {
	if h.Status != "ok" {
		return fmt.Errorf("server unavailable (status %q)", h.Status)
	}
	return nil
}

func run() error {
	server := flag.String("server", "http://localhost:7337", "plusd base URL")
	token := flag.String("token", "", "signed session token sent with every request (X-Plus-Session)")
	tlsCA := flag.String("tls-ca", "", "PEM CA bundle verifying an https server (self-signed chains)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	c := plus.NewClient(*server)
	c.SetToken(*token)
	if *tlsCA != "" {
		hc, err := plusclient.NewTLSHTTPClient(*tlsCA)
		if err != nil {
			return err
		}
		c.SetHTTPClient(hc)
	}
	return execute(c, args[0], args[1:])
}

// execute dispatches one subcommand against the client; split from run so
// tests can drive it without the process-global flag state.
func execute(c *plus.Client, cmd string, rest []string) error {
	switch cmd {
	case "put-object":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		id := fs.String("id", "", "object id")
		kind := fs.String("kind", "data", "data or invocation")
		name := fs.String("name", "", "display name")
		lowest := fs.String("lowest", "", "lowest privilege-predicate")
		protect := fs.String("protect", "", "incidence protection: surrogate or hide")
		_ = fs.Parse(rest)
		return c.PutObject(plus.Object{
			ID: *id, Kind: plus.ObjectKind(*kind), Name: *name, Lowest: *lowest, Protect: *protect,
		})
	case "put-edge":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		from := fs.String("from", "", "source object id")
		to := fs.String("to", "", "destination object id")
		label := fs.String("label", "", "edge label")
		at := fs.String("protect-at", "", "predicate at or above which the edge is fully visible")
		mode := fs.String("protect-mode", "surrogate", "surrogate or hide")
		_ = fs.Parse(rest)
		e := plus.Edge{From: *from, To: *to, Label: *label}
		if *at != "" {
			e.Lowest = *at
			e.Marking = *mode
		}
		return c.PutEdge(e)
	case "put-surrogate":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		forID := fs.String("for", "", "original object id")
		id := fs.String("id", "", "surrogate id")
		name := fs.String("name", "", "surrogate display name")
		lowest := fs.String("lowest", "", "lowest privilege-predicate")
		score := fs.Float64("score", 0.5, "infoScore in [0,1]")
		_ = fs.Parse(rest)
		return c.PutSurrogate(plus.SurrogateSpec{
			ForID: *forID, ID: *id, Name: *name, Lowest: *lowest, InfoScore: *score,
		})
	case "get":
		if len(rest) != 1 {
			return fmt.Errorf("usage: plusctl get <id>")
		}
		o, err := c.GetObject(rest[0])
		if err != nil {
			return err
		}
		return printJSON(o)
	case "lineage":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		start := fs.String("start", "", "starting object id")
		direction := fs.String("direction", "ancestors", "ancestors, descendants or both")
		depth := fs.Int("depth", 0, "max hops (0 = unbounded)")
		viewer := fs.String("viewer", "", "consumer privilege-predicate")
		mode := fs.String("mode", "surrogate", "surrogate or hide")
		label := fs.String("label", "", "restrict traversal to this edge label")
		kind := fs.String("kind", "", "restrict traversal to data or invocation objects")
		_ = fs.Parse(rest)
		resp, err := c.Lineage(plus.LineageQuery{
			Start: *start, Direction: *direction, Depth: *depth, Viewer: *viewer, Mode: *mode,
			Label: *label, Kind: *kind,
		})
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "query":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		viewer := fs.String("viewer", "", "consumer privilege-predicate")
		mode := fs.String("mode", "", "surrogate or hide")
		limit := fs.Int("limit", 0, "cap result rows (0 = server default)")
		format := fs.String("format", "table", "output format: table or json")
		explain := fs.Bool("explain", false, "print the executed plan")
		_ = fs.Parse(rest)
		if fs.NArg() != 1 {
			return fmt.Errorf("usage: plusctl %s", synopsisOf("query"))
		}
		if *format != "table" && *format != "json" {
			return fmt.Errorf("unknown format %q (want table or json)", *format)
		}
		resp, err := plusql.ClientQuery(c, plusql.QueryRequest{
			Query: fs.Arg(0), Viewer: *viewer, Mode: *mode, Limit: *limit, Explain: *explain,
		})
		if err != nil {
			return err
		}
		if *format == "json" {
			return printJSON(resp)
		}
		return printQueryTable(os.Stdout, resp)
	case "session":
		if len(rest) == 0 {
			return fmt.Errorf("usage: plusctl %s", synopsisOf("session"))
		}
		switch rest[0] {
		case "mint":
			return sessionMint(rest[1:])
		case "inspect":
			return sessionInspect(rest[1:])
		default:
			return fmt.Errorf("unknown session subcommand %q (want mint or inspect)", rest[0])
		}
	case "batch":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		viewer := fs.String("viewer", "", "privilege-predicate principal (X-Plus-Viewer)")
		token := fs.String("token", "", "signed session token principal (X-Plus-Session)")
		file := fs.String("file", "", "batch JSON document to ingest (default stdin)")
		_ = fs.Parse(rest)
		in := io.Reader(os.Stdin)
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		var b plusclient.BatchRequest
		dec := json.NewDecoder(in)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&b); err != nil {
			return fmt.Errorf("batch document: %w", err)
		}
		resp, err := sdkClient(c, *viewer, *token).Batch(context.Background(), b)
		if err != nil {
			return err
		}
		return printJSON(resp)
	case "follow":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		viewer := fs.String("viewer", "", "privilege-predicate principal (X-Plus-Viewer)")
		token := fs.String("token", "", "signed session token principal (X-Plus-Session)")
		cursor := fs.String("cursor", "", "resume position (from a previous event, batch or snapshot)")
		tail := fs.Bool("tail", false, "keep following after catching up (default: exit at first sync)")
		wait := fs.Duration("wait", 10*time.Second, "per-connection long-poll budget when tailing")
		maxEvents := fs.Int("max", 0, "stop after this many change events (0 = unbounded)")
		noResync := fs.Bool("no-resync", false, "fail with the 410 instead of auto-resyncing from a snapshot")
		_ = fs.Parse(rest)
		enc := json.NewEncoder(os.Stdout)
		changes := 0
		err := sdkClient(c, *viewer, *token).Follow(context.Background(), *cursor,
			plusclient.FollowOptions{Wait: *wait, DisableResync: *noResync},
			func(ev plusclient.Event) error {
				if err := enc.Encode(ev); err != nil {
					return err
				}
				switch ev.Type {
				case plusclient.EventChange:
					changes++
					if *maxEvents > 0 && changes >= *maxEvents {
						return plusclient.ErrStopFollow
					}
				case plusclient.EventSync:
					if !*tail {
						return plusclient.ErrStopFollow
					}
				}
				return nil
			})
		return err
	case "stats":
		s, err := c.Stats()
		if err != nil {
			return err
		}
		return printJSON(s)
	case "top":
		return topCommand(c, rest)
	case "slowlog":
		var entries []obs.SlowEntry
		if err := c.GetJSON("/v2/slowlog", &entries); err != nil {
			return err
		}
		return printJSON(entries)
	case "status":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		maxLag := fs.Duration("max-lag", 0, "exit non-zero when a follower has been stalled longer than this (0 = off)")
		_ = fs.Parse(rest)
		h, err := c.Healthz()
		if err != nil {
			return err
		}
		if err := printStatus(os.Stdout, h); err != nil {
			return err
		}
		if err := healthzExit(h); err != nil {
			return err
		}
		return replicaExit(h, *maxLag)
	case "healthz":
		h, err := c.Healthz()
		if err != nil {
			return err
		}
		if err := printJSON(h); err != nil {
			return err
		}
		return healthzExit(h)
	case "export-opm":
		return c.ExportOPM(os.Stdout)
	case "import-opm":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		file := fs.String("file", "", "OPM JSON document to import (default stdin)")
		_ = fs.Parse(rest)
		in := os.Stdin
		if *file != "" {
			f, err := os.Open(*file)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		return c.ImportOPM(in)
	default:
		fmt.Fprint(os.Stderr, usageListing())
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plusctl:", err)
		os.Exit(1)
	}
}

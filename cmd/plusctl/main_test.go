package main

import (
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

func testClient(t *testing.T) *plus.Client {
	c, _ := testClientStore(t)
	return c
}

func testClientStore(t *testing.T) (*plus.Client, *plus.LogBackend) {
	t.Helper()
	dir := t.TempDir()
	store, err := plus.Open(dir+"/plus.log", plus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	lat := privilege.TwoLevel()
	s := plus.NewServer(plus.NewEngine(store, lat))
	plusql.Attach(s, plusql.NewEngine(store, lat))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return plus.NewClient(srv.URL), store
}

func TestExecuteWorkflow(t *testing.T) {
	c := testClient(t)
	steps := [][]string{
		{"put-object", "-id", "src", "-kind", "data", "-name", "raw"},
		{"put-object", "-id", "proc", "-kind", "invocation", "-name", "step", "-lowest", "Protected", "-protect", "surrogate"},
		{"put-object", "-id", "out", "-kind", "data", "-name", "result"},
		{"put-edge", "-from", "src", "-to", "proc", "-label", "input-to"},
		{"put-edge", "-from", "proc", "-to", "out", "-label", "generated"},
		{"put-surrogate", "-for", "proc", "-id", "proc~", "-name", "a step", "-score", "0.4"},
		{"get", "src"},
		{"lineage", "-start", "out", "-direction", "ancestors", "-viewer", "Public", "-mode", "surrogate"},
		{"lineage", "-start", "out", "-depth", "1"},
		{"stats"},
		{"status"},
		{"healthz"},
	}
	for _, s := range steps {
		if err := execute(c, s[0], s[1:]); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
}

// TestPrintStatus renders the healthz payload including the delta-scoped
// cache counters.
func TestPrintStatus(t *testing.T) {
	lc := plus.LineageCacheStats{Entries: 2, Hits: 7, Misses: 3, DeltaEvictions: 1}
	qc := plus.QueryCacheHealth{Views: 1, Hits: 4, Misses: 2, Advanced: 5, FullBuilds: 1}
	ix := plus.IndexStats{Rev: 13, KindEntries: 9, NameEntries: 8, AttrEntries: 17, Hits: 21, Misses: 2}
	in := plus.InternHealth{Strings: 42, Bytes: 311}
	h := plus.HealthzResponse{
		Status: "ok", Objects: 9, Edges: 4, Revision: 13,
		LineageCache: &lc, QueryCache: &qc, Index: &ix, Intern: &in,
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := printStatus(w, h); err != nil {
		t.Fatal(err)
	}
	w.Close()
	buf := make([]byte, 4096)
	n, _ := r.Read(buf)
	out := string(buf[:n])
	for _, want := range []string{
		"status", "ok", "revision", "13",
		"2 entries", "7 hits", "1 evicted",
		"1 cached", "5 advanced", "1 full builds",
		"9 kind, 8 name, 17 attr entries (rev 13)",
		"21 hits, 2 misses",
		"42 strings, 311 bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestExecuteEdgeProtection(t *testing.T) {
	c := testClient(t)
	for _, s := range [][]string{
		{"put-object", "-id", "a", "-kind", "data", "-name", "a"},
		{"put-object", "-id", "b", "-kind", "data", "-name", "b"},
		{"put-edge", "-from", "a", "-to", "b", "-protect-at", "Protected", "-protect-mode", "hide"},
	} {
		if err := execute(c, s[0], s[1:]); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	resp, err := c.Lineage(plus.LineageQuery{Start: "b", Direction: "ancestors"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Edges) != 0 {
		t.Errorf("hidden edge leaked: %+v", resp.Edges)
	}
}

func TestExecuteOPM(t *testing.T) {
	c := testClient(t)
	for _, s := range [][]string{
		{"put-object", "-id", "a", "-kind", "data", "-name", "a"},
		{"export-opm"},
	} {
		if err := execute(c, s[0], s[1:]); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	// import-opm from a file.
	doc := `{"artifacts":[{"id":"z","value":"zed"}],"processes":[],"used":[],"wasGeneratedBy":[]}`
	path := t.TempDir() + "/doc.json"
	if err := osWriteFile(path, doc); err != nil {
		t.Fatal(err)
	}
	if err := execute(c, "import-opm", []string{"-file", path}); err != nil {
		t.Fatal(err)
	}
	if err := execute(c, "get", []string{"z"}); err != nil {
		t.Errorf("imported object missing: %v", err)
	}
	if err := execute(c, "import-opm", []string{"-file", path + ".missing"}); err == nil {
		t.Error("missing import file accepted")
	}
}

func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestHealthzExitCodeOnUnavailable is the exit-code regression test: a
// degraded probe answer (HTTP 503, status "unavailable") must make the
// healthz and status subcommands fail, not print the payload and exit 0.
func TestHealthzExitCodeOnUnavailable(t *testing.T) {
	c, store := testClientStore(t)
	if err := execute(c, "healthz", nil); err != nil {
		t.Fatalf("healthy probe failed: %v", err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := execute(c, "healthz", nil); err == nil {
		t.Error("healthz against an unavailable server exited 0")
	}
	if err := execute(c, "status", nil); err == nil {
		t.Error("status against an unavailable server exited 0")
	}
}

// TestExecuteBatchAndFollow drives the v2 SDK subcommands: batch ingests
// a document atomically, follow drains the change feed and exits at the
// first catch-up.
func TestExecuteBatchAndFollow(t *testing.T) {
	c := testClient(t)
	doc := `{
		"objects": [
			{"id": "a", "kind": "data", "name": "a"},
			{"id": "b", "kind": "data", "name": "b"}
		],
		"edges": [{"from": "a", "to": "b", "label": "feeds"}]
	}`
	path := t.TempDir() + "/batch.json"
	if err := osWriteFile(path, doc); err != nil {
		t.Fatal(err)
	}
	if err := execute(c, "batch", []string{"-file", path}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if o, err := c.GetObject("b"); err != nil || o.Name != "b" {
		t.Fatalf("batched object = %+v, %v", o, err)
	}

	// An invalid batch applies nothing and exits non-zero.
	bad := `{"objects": [{"id": "x", "kind": "data"}], "edges": [{"from": "x", "to": "ghost"}]}`
	if err := osWriteFile(path, bad); err != nil {
		t.Fatal(err)
	}
	if err := execute(c, "batch", []string{"-file", path}); err == nil {
		t.Error("invalid batch exited 0")
	}
	if _, err := c.GetObject("x"); err == nil {
		t.Error("invalid batch left partial state")
	}

	for _, args := range [][]string{
		{"follow"},
		{"follow", "-max", "2"},
		{"follow", "-viewer", "Protected"},
	} {
		if err := execute(c, args[0], args[1:]); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	if err := execute(c, "follow", []string{"-viewer", "Nope"}); err == nil {
		t.Error("unknown follow viewer exited 0")
	}
	if err := execute(c, "follow", []string{"-cursor", "garbage"}); err == nil {
		t.Error("garbage cursor exited 0")
	}
}

func TestExecuteErrors(t *testing.T) {
	c := testClient(t)
	if err := execute(c, "banana", nil); err == nil {
		t.Error("unknown command accepted")
	}
	if err := execute(c, "get", nil); err == nil {
		t.Error("get without id accepted")
	}
	if err := execute(c, "get", []string{"missing"}); err == nil {
		t.Error("get of missing object accepted")
	}
	if err := execute(c, "put-object", []string{"-id", "", "-kind", "data"}); err == nil {
		t.Error("invalid object accepted")
	}
	if err := execute(c, "lineage", []string{"-start", "nope"}); err == nil {
		t.Error("lineage of missing object accepted")
	}
}

func TestExecuteQuery(t *testing.T) {
	c := testClient(t)
	for _, s := range [][]string{
		{"put-object", "-id", "src", "-kind", "data", "-name", "raw"},
		{"put-object", "-id", "proc", "-kind", "invocation", "-name", "step", "-lowest", "Protected"},
		{"put-object", "-id", "out", "-kind", "data", "-name", "result"},
		{"put-edge", "-from", "src", "-to", "proc", "-label", "input-to"},
		{"put-edge", "-from", "proc", "-to", "out", "-label", "generated"},
		{"put-surrogate", "-for", "proc", "-id", "proc~", "-name", "a step", "-score", "0.4"},
	} {
		if err := execute(c, s[0], s[1:]); err != nil {
			t.Fatalf("%v: %v", s, err)
		}
	}
	for _, args := range [][]string{
		{`ancestor*(X, "out")`},
		{"-format", "json", `ancestor*(X, "out"), kind(X, data)`},
		{"-viewer", "Protected", "-explain", "-limit", "2", `node(X)`},
	} {
		if err := execute(c, "query", args); err != nil {
			t.Fatalf("query %v: %v", args, err)
		}
	}
	// Bad query text fails with the server's positioned parse error.
	if err := execute(c, "query", []string{`bogus(X)`}); err == nil {
		t.Error("bad query did not fail")
	}
	// Missing query argument is a usage error.
	if err := execute(c, "query", nil); err == nil {
		t.Error("missing query argument did not fail")
	}
	// Unknown output format is rejected instead of silently defaulting.
	if err := execute(c, "query", []string{"-format", "csv", `node(X)`}); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestUnknownCommandListsUsage(t *testing.T) {
	c := testClient(t)
	if err := execute(c, "frob", nil); err == nil {
		t.Fatal("unknown command did not fail")
	}
	// The usage listing names every subcommand on its own line.
	listing := usageListing()
	for _, cmd := range commands {
		if !strings.Contains(listing, "\n  "+cmd.name) {
			t.Errorf("usage listing missing %q:\n%s", cmd.name, listing)
		}
	}
	if !strings.Contains(listing, "usage: plusctl") {
		t.Errorf("usage listing missing header:\n%s", listing)
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	runErr := fn()
	os.Stdout = orig
	w.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// TestSessionMintAndInspect drives the operator tooling round trip:
// mint a token offline from a keyring file, inspect it, and watch
// inspection fail against the wrong keyring.
func TestSessionMintAndInspect(t *testing.T) {
	c := testClient(t)
	dir := t.TempDir()
	keys := dir + "/keyring"
	if err := osWriteFile(keys, "k2:fresh-signing-secret-material\nk1:older-retained-secret-bytes\n"); err != nil {
		t.Fatal(err)
	}

	out, err := captureStdout(t, func() error {
		return execute(c, "session", []string{"mint", "-keys", keys, "-viewer", "Protected", "-caps", "ingest,query", "-ttl", "30m"})
	})
	if err != nil {
		t.Fatalf("mint: %v", err)
	}
	token := strings.TrimSpace(out)
	claims, err := plus.DecodeTokenClaims(token)
	if err != nil {
		t.Fatalf("minted token does not decode: %v", err)
	}
	if claims.Viewer != "Protected" || claims.KeyID != "k2" {
		t.Errorf("claims = %+v", claims)
	}
	if !claims.Can(plus.CapIngest) || !claims.Can(plus.CapQuery) || claims.Can(plus.CapAdmin) {
		t.Errorf("capabilities = %v", claims.Capabilities)
	}

	// Mint with the retained (non-active) key id.
	out, err = captureStdout(t, func() error {
		return execute(c, "session", []string{"mint", "-keys", keys, "-viewer", "Public", "-key", "k1"})
	})
	if err != nil {
		t.Fatalf("mint -key: %v", err)
	}
	oldKey := strings.TrimSpace(out)
	if cl, err := plus.DecodeTokenClaims(oldKey); err != nil || cl.KeyID != "k1" {
		t.Errorf("old-key claims = %+v, %v", cl, err)
	}

	// Inspect verifies against the keyring, and reports the signer.
	out, err = captureStdout(t, func() error {
		return execute(c, "session", []string{"inspect", "-keys", keys, token})
	})
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	if !strings.Contains(out, `"valid (key k2)"`) || !strings.Contains(out, `"Protected"`) {
		t.Errorf("inspect output:\n%s", out)
	}

	// Against a different keyring the signature must not verify, and the
	// command exits non-zero.
	other := dir + "/other"
	if err := osWriteFile(other, "kx:completely-different-secret\n"); err != nil {
		t.Fatal(err)
	}
	out, err = captureStdout(t, func() error {
		return execute(c, "session", []string{"inspect", "-keys", other, token})
	})
	if err == nil {
		t.Error("inspect against the wrong keyring exited 0")
	}
	if !strings.Contains(out, "INVALID") {
		t.Errorf("inspect output missing INVALID:\n%s", out)
	}

	// Inspect without -keys still decodes the claims.
	out, err = captureStdout(t, func() error {
		return execute(c, "session", []string{"inspect", token})
	})
	if err != nil || !strings.Contains(out, "unverified") {
		t.Errorf("bare inspect: err=%v output:\n%s", err, out)
	}

	// Usage errors.
	if err := execute(c, "session", nil); err == nil {
		t.Error("bare session accepted")
	}
	if err := execute(c, "session", []string{"frobnicate"}); err == nil {
		t.Error("unknown session subcommand accepted")
	}
	if err := execute(c, "session", []string{"mint", "-keys", keys}); err == nil {
		t.Error("mint without -viewer accepted")
	}
	if err := execute(c, "session", []string{"mint", "-keys", keys, "-viewer", "P", "-caps", "root"}); err == nil {
		t.Error("mint with unknown capability accepted")
	}
}

// TestBatchAndFollowWithToken drives the v2 subcommands against an
// auth-required server: tokenless fails, -token succeeds.
func TestBatchAndFollowWithToken(t *testing.T) {
	kr, err := plus.NewKeyring(plus.Key{ID: "k1", Secret: []byte("ctl-test-secret-material")})
	if err != nil {
		t.Fatal(err)
	}
	m := plus.NewMemBackend(2)
	t.Cleanup(func() { m.Close() })
	lat := privilege.TwoLevel()
	s := plus.NewServer(plus.NewEngine(m, lat), plus.WithAuth(plus.AuthConfig{Keyring: kr, Require: true}))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	c := plus.NewClient(srv.URL)

	keys := t.TempDir() + "/keyring"
	if err := osWriteFile(keys, "k1:ctl-test-secret-material\n"); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return execute(c, "session", []string{"mint", "-keys", keys, "-viewer", "Protected"})
	})
	if err != nil {
		t.Fatal(err)
	}
	token := strings.TrimSpace(out)

	doc := `{"objects": [{"id": "a", "kind": "data", "name": "a"}]}`
	path := t.TempDir() + "/batch.json"
	if err := osWriteFile(path, doc); err != nil {
		t.Fatal(err)
	}
	if err := execute(c, "batch", []string{"-file", path}); err == nil {
		t.Error("tokenless batch against auth-required server exited 0")
	}
	if _, err := captureStdout(t, func() error {
		return execute(c, "batch", []string{"-token", token, "-file", path})
	}); err != nil {
		t.Fatalf("batch -token: %v", err)
	}
	if err := execute(c, "follow", []string{"-token", token}); err != nil {
		t.Fatalf("follow -token: %v", err)
	}
	if err := execute(c, "follow", nil); err == nil {
		t.Error("tokenless follow against auth-required server exited 0")
	}
}

// TestGlobalTokenOnV1Subcommands: the global -token (plus.Client.SetToken)
// authenticates the whole legacy surface — put/get/lineage/stats — against
// an auth-required server, and the SDK subcommands inherit it.
func TestGlobalTokenOnV1Subcommands(t *testing.T) {
	kr, err := plus.NewKeyring(plus.Key{ID: "k1", Secret: []byte("ctl-global-secret-material")})
	if err != nil {
		t.Fatal(err)
	}
	m := plus.NewMemBackend(2)
	t.Cleanup(func() { m.Close() })
	lat := privilege.TwoLevel()
	s := plus.NewServer(plus.NewEngine(m, lat), plus.WithAuth(plus.AuthConfig{Keyring: kr, Require: true}))
	plusql.Attach(s, plusql.NewEngine(m, lat))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	c := plus.NewClient(srv.URL)
	if err := execute(c, "put-object", []string{"-id", "a", "-kind", "data", "-name", "a"}); err == nil {
		t.Fatal("tokenless v1 write against auth-required server exited 0")
	}

	keys := t.TempDir() + "/keyring"
	if err := osWriteFile(keys, "k1:ctl-global-secret-material\n"); err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return execute(c, "session", []string{"mint", "-keys", keys, "-viewer", "Protected"})
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SetToken(strings.TrimSpace(out))

	for _, args := range [][]string{
		{"put-object", "-id", "a", "-kind", "data", "-name", "a"},
		{"get", "a"},
		{"lineage", "-start", "a"},
		{"query", `node(X)`},
		{"stats"},
		{"export-opm"},
		{"follow"}, // SDK subcommand inherits the global token
	} {
		if _, err := captureStdout(t, func() error { return execute(c, args[0], args[1:]) }); err != nil {
			t.Errorf("%v with global token: %v", args, err)
		}
	}
}

package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/plus"
)

// top polls GET /v2/metrics?format=json and renders a live operator
// table: store gauges, cache efficiency, per-route HTTP traffic and
// per-op backend latency. The principal needs the admin capability.
func topCommand(c *plus.Client, rest []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	count := fs.Int("n", 0, "exit after this many refreshes (0 = until interrupted)")
	once := fs.Bool("once", false, "print one snapshot and exit (same as -n 1)")
	_ = fs.Parse(rest)
	if *once {
		*count = 1
	}
	for i := 0; ; i++ {
		var fams []obs.Family
		if err := c.GetJSON("/v2/metrics?format=json", &fams); err != nil {
			return err
		}
		if *count != 1 {
			// Home the cursor and wipe: a live table, not a scroll.
			fmt.Print("\033[H\033[2J")
		}
		if err := renderTop(os.Stdout, c.BaseURL(), fams); err != nil {
			return err
		}
		if *count > 0 && i+1 >= *count {
			return nil
		}
		time.Sleep(*interval)
	}
}

// byName indexes a gathered snapshot for random access.
func byName(fams []obs.Family) map[string]obs.Family {
	m := make(map[string]obs.Family, len(fams))
	for _, f := range fams {
		m[f.Name] = f
	}
	return m
}

// labelOf reads one label value off a series ("" when absent).
func labelOf(s obs.Series, name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// firstValue reads the single-series value of a gauge/counter family.
func firstValue(m map[string]obs.Family, name string) float64 {
	f, ok := m[name]
	if !ok || len(f.Series) == 0 {
		return 0
	}
	return f.Series[0].Value
}

// sumValues totals every series of a counter family, optionally
// filtered by a label predicate.
func sumValues(m map[string]obs.Family, name string, keep func(obs.Series) bool) float64 {
	var total float64
	for _, s := range m[name].Series {
		if keep == nil || keep(s) {
			total += s.Value
		}
	}
	return total
}

// fmtDur renders a quantile (seconds) compactly for the table.
func fmtDur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond).String()
}

func renderTop(w io.Writer, server string, fams []obs.Family) error {
	m := byName(fams)
	uptime := time.Duration(firstValue(m, "plus_uptime_seconds")) * time.Second
	fmt.Fprintf(w, "plusd %s  up %s  refreshed %s\n\n",
		server, uptime.Round(time.Second), time.Now().Format("15:04:05"))

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "store\tobjects %.0f, edges %.0f, revision %.0f, log %.0f bytes\n",
		firstValue(m, "plus_store_objects"), firstValue(m, "plus_store_edges"),
		firstValue(m, "plus_store_revision"), firstValue(m, "plus_store_log_bytes"))
	if _, ok := m["plus_changefeed_ring_depth"]; ok {
		fmt.Fprintf(tw, "changefeed\tbase %.0f, depth %.0f / horizon %.0f, wakeups %.0f\n",
			firstValue(m, "plus_changefeed_base_revision"),
			firstValue(m, "plus_changefeed_ring_depth"),
			firstValue(m, "plus_changefeed_horizon"),
			firstValue(m, "plus_notify_wakeups_total"))
	}
	if _, ok := m["plus_lineage_cache_hits_total"]; ok {
		fmt.Fprintf(tw, "lineage cache\t%.0f entries, %.0f hits, %.0f misses, %.0f delta-evictions\n",
			firstValue(m, "plus_lineage_cache_entries"),
			firstValue(m, "plus_lineage_cache_hits_total"),
			firstValue(m, "plus_lineage_cache_misses_total"),
			firstValue(m, "plus_lineage_cache_delta_evictions_total"))
	}
	if _, ok := m["plus_query_view_hits_total"]; ok {
		fmt.Fprintf(tw, "query views\t%.0f cached, %.0f hits, %.0f misses, %.0f full builds\n",
			firstValue(m, "plus_query_view_cache_entries"),
			firstValue(m, "plus_query_view_hits_total"),
			firstValue(m, "plus_query_view_misses_total"),
			firstValue(m, "plus_query_view_full_builds_total"))
	}
	denied := sumValues(m, "plus_authz_total", func(s obs.Series) bool {
		return labelOf(s, "outcome") != "ok"
	})
	fmt.Fprintf(tw, "auth\t%.0f denied, %.0f bad tokens, %.0f slow queries\n",
		denied,
		sumValues(m, "plus_token_verify_total", func(s obs.Series) bool {
			return labelOf(s, "outcome") != "ok"
		}),
		sumValues(m, "plus_slow_queries_total", nil))
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "route\tcount\terrors\tp50\tp99")
	errsByRoute := map[string]float64{}
	for _, s := range m["plus_http_requests_total"].Series {
		if st := labelOf(s, "status"); len(st) > 0 && st[0] >= '4' {
			errsByRoute[labelOf(s, "route")] += s.Value
		}
	}
	lat := m["plus_http_request_seconds"].Series
	sort.Slice(lat, func(i, j int) bool { return lat[i].Count > lat[j].Count })
	for _, s := range lat {
		route := labelOf(s, "route")
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%s\t%s\n",
			route, s.Count, errsByRoute[route],
			fmtDur(s.Quantiles["0.5"]), fmtDur(s.Quantiles["0.99"]))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if ops := m["plus_backend_op_seconds"].Series; len(ops) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "backend op\tcount\tp50\tp99")
		for _, s := range ops {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n",
				labelOf(s, "op"), s.Count, fmtDur(s.Quantiles["0.5"]), fmtDur(s.Quantiles["0.99"]))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	for _, eng := range []struct{ fam, title string }{
		{"plus_lineage_seconds", "lineage phase"},
		{"plus_plusql_seconds", "plusql phase"},
	} {
		series := m[eng.fam].Series
		if len(series) == 0 {
			continue
		}
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "%s\tcount\tp50\tp99\n", eng.title)
		for _, s := range series {
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n",
				labelOf(s, "phase"), s.Count, fmtDur(s.Quantiles["0.5"]), fmtDur(s.Quantiles["0.99"]))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/eval"
)

func TestQuickGrid(t *testing.T) {
	grid := quickGrid()
	if len(grid) != 10 {
		t.Fatalf("grid = %d configs", len(grid))
	}
	seeds := map[int64]bool{}
	for _, cfg := range grid {
		if cfg.Nodes != 100 {
			t.Errorf("nodes = %d", cfg.Nodes)
		}
		if seeds[cfg.Seed] {
			t.Errorf("duplicate seed %d", cfg.Seed)
		}
		seeds[cfg.Seed] = true
	}
}

func TestWriteCSV(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	tbl := &eval.Table{Header: []string{"a", "b"}}
	tbl.Add("x", 1.0)
	if err := writeCSV(dir, "test", tbl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "a,b") || !strings.Contains(string(data), "x,1.000") {
		t.Errorf("csv = %q", data)
	}
	// Empty dir is a no-op.
	if err := writeCSV("", "test", tbl); err != nil {
		t.Errorf("no-op write failed: %v", err)
	}
}

func TestEmitPrintsAndWrites(t *testing.T) {
	dir := t.TempDir()
	tbl := &eval.Table{Title: "T", Header: []string{"h"}}
	tbl.Add("v")
	var out bytes.Buffer
	if err := emit(&out, dir, "emitted", tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "emitted.csv")); err != nil {
		t.Errorf("csv missing: %v", err)
	}
	if !strings.Contains(out.String(), "T") {
		t.Error("emit did not print the table")
	}
}

func TestRunSingleExperiments(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"table1", "fig3", "fig7"} {
		var out bytes.Buffer
		if err := run([]string{"-run", name, "-csv", dir}, &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no output", name)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".csv")); err != nil {
			t.Errorf("%s csv missing: %v", name, err)
		}
	}
}

func TestRunFig10Small(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig10", "-fig10-nodes", "60"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "protect via surrogate") {
		t.Errorf("fig10 output wrong:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "banana"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation and prints paper-vs-measured comparisons.
//
// Usage:
//
//	experiments [-run all|table1|fig3|fig7|fig8|fig9|fig10] [-quick] [-csv dir]
//
// -quick shrinks the synthetic sweep (Figures 8 and 9) to a small grid for
// fast smoke runs; -csv writes each table as a CSV file into the given
// directory for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/eval"
	"repro/internal/workload"
)

func writeCSV(dir, name string, t *eval.Table) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name+".csv"), []byte(t.CSV()), 0o644)
}

func emit(w io.Writer, csvDir, name string, t *eval.Table) error {
	fmt.Fprintln(w, t)
	return writeCSV(csvDir, name, t)
}

func quickGrid() []workload.SyntheticConfig {
	var cfgs []workload.SyntheticConfig
	for fi, f := range []float64{0.10, 0.30, 0.50, 0.70, 0.90} {
		for ci, target := range []float64{20, 45} {
			cfgs = append(cfgs, workload.SyntheticConfig{
				Nodes:           100,
				TargetConnected: target,
				ProtectFraction: f,
				Seed:            int64(700 + fi*10 + ci),
			})
		}
	}
	return cfgs
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	which := fs.String("run", "all", "experiment: all, table1, fig3, fig7, fig8, fig9, fig10, ablations, robustness, scorecard")
	quick := fs.Bool("quick", false, "use a reduced synthetic grid for figures 8 and 9")
	csvDir := fs.String("csv", "", "directory to write CSV outputs into")
	fig10Nodes := fs.Int("fig10-nodes", 200, "graph size for the figure 10 performance run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := func(name string) bool { return *which == "all" || *which == name }
	ran := false

	if want("table1") {
		ran = true
		t, err := eval.Table1Table()
		if err != nil {
			return err
		}
		if err := emit(stdout, *csvDir, "table1", t); err != nil {
			return err
		}
	}
	if want("fig3") {
		ran = true
		t, err := eval.Fig3Table()
		if err != nil {
			return err
		}
		if err := emit(stdout, *csvDir, "fig3", t); err != nil {
			return err
		}
	}
	if want("fig7") {
		ran = true
		t, err := eval.Fig7Table()
		if err != nil {
			return err
		}
		if err := emit(stdout, *csvDir, "fig7", t); err != nil {
			return err
		}
	}
	if want("fig8") || want("fig9") {
		ran = true
		grid := workload.PaperGrid()
		if *quick {
			grid = quickGrid()
		}
		fmt.Fprintf(stdout, "synthetic sweep: %d graphs...\n", len(grid))
		rows, err := eval.SyntheticSweep(grid)
		if err != nil {
			return err
		}
		if want("fig8") {
			if err := emit(stdout, *csvDir, "fig8", eval.Fig8Table(rows)); err != nil {
				return err
			}
		}
		if want("fig9") {
			opa, util := eval.Fig9Tables(rows)
			if err := emit(stdout, *csvDir, "fig9a", opa); err != nil {
				return err
			}
			if err := emit(stdout, *csvDir, "fig9b", util); err != nil {
				return err
			}
		}
	}
	if want("ablations") {
		ran = true
		for name, build := range map[string]func() (*eval.Table, error){
			"ablation_adversary":  eval.AblationAdversary,
			"ablation_attacker":   eval.AblationAttackerClass,
			"ablation_side":       eval.AblationSide,
			"ablation_null":       eval.AblationNullTable,
			"ablation_redundancy": eval.AblationRedundancy,
		} {
			t, err := build()
			if err != nil {
				return err
			}
			if err := emit(stdout, *csvDir, name, t); err != nil {
				return err
			}
		}
	}
	if want("scorecard") {
		ran = true
		t, err := eval.ScorecardTable()
		if err != nil {
			return err
		}
		if err := emit(stdout, *csvDir, "scorecard", t); err != nil {
			return err
		}
	}
	if want("robustness") {
		ran = true
		t, err := eval.RobustnessTable(120)
		if err != nil {
			return err
		}
		if err := emit(stdout, *csvDir, "robustness", t); err != nil {
			return err
		}
	}
	if want("fig10") {
		ran = true
		dir, err := os.MkdirTemp("", "plus-fig10-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		res, err := eval.Figure10(dir, *fig10Nodes)
		if err != nil {
			return err
		}
		if err := emit(stdout, *csvDir, "fig10", eval.Fig10Table(res)); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown -run %q (want all, table1, fig3, fig7, fig8, fig9, fig10, ablations, robustness or scorecard)", *which)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", strings.TrimSpace(err.Error()))
		os.Exit(1)
	}
}

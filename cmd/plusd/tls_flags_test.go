package main

import (
	"strings"
	"testing"
)

func TestSplitTLSPair(t *testing.T) {
	cases := []struct {
		in        string
		cert, key string
		wantErr   bool
	}{
		{"cert.pem,key.pem", "cert.pem", "key.pem", false},
		{" cert.pem , key.pem ", "cert.pem", "key.pem", false},
		{"/a/cert.pem,/a/key.pem", "/a/cert.pem", "/a/key.pem", false},
		{"cert.pem", "", "", true},
		{"", "", "", true},
		{"cert.pem,", "", "", true},
		{",key.pem", "", "", true},
		{" , ", "", "", true},
	}
	for _, tc := range cases {
		cert, key, err := splitTLSPair(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("splitTLSPair(%q) = %q,%q, want error", tc.in, cert, key)
			}
			continue
		}
		if err != nil {
			t.Errorf("splitTLSPair(%q): %v", tc.in, err)
			continue
		}
		if cert != tc.cert || key != tc.key {
			t.Errorf("splitTLSPair(%q) = %q,%q, want %q,%q", tc.in, cert, key, tc.cert, tc.key)
		}
	}
}

// The two TLS serving modes are mutually exclusive, and a malformed -tls
// pair must fail before any listener binds.
func TestListenAndServeTLSFlagErrors(t *testing.T) {
	if err := listenAndServe("127.0.0.1:0", nil, "c.pem,k.pem", "/tmp/dir"); err == nil ||
		!strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("both TLS flags: err = %v, want mutual-exclusion error", err)
	}
	if err := listenAndServe("127.0.0.1:0", nil, "only-cert.pem", ""); err == nil ||
		!strings.Contains(err.Error(), "-tls wants") {
		t.Errorf("malformed -tls: err = %v, want parse error", err)
	}
}

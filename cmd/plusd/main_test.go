package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/plus"
	"repro/internal/privilege"
)

func TestLoadLatticeDefault(t *testing.T) {
	lat, err := loadLattice("")
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("Protected", privilege.Public) {
		t.Error("default lattice should be two-level")
	}
}

func TestLoadLatticeFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lattice.json")
	if err := os.WriteFile(path, []byte(`[["High-1","Low-2"],["High-2","Low-2"]]`), 0o644); err != nil {
		t.Fatal(err)
	}
	lat, err := loadLattice(path)
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("High-1", "Low-2") || !lat.Incomparable("High-1", "High-2") {
		t.Error("lattice file not honoured")
	}
}

func TestOpenBackendKinds(t *testing.T) {
	logB, err := openBackend("log", filepath.Join(t.TempDir(), "plus.log"), 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer logB.Close()
	if _, ok := logB.(*plus.LogBackend); !ok {
		t.Errorf("log backend = %T", logB)
	}

	memB, err := openBackend("mem", "", 8, 128, false)
	if err != nil {
		t.Fatal(err)
	}
	defer memB.Close()
	mb, ok := memB.(*plus.MemBackend)
	if !ok {
		t.Fatalf("mem backend = %T", memB)
	}
	if mb.NumShards() != 8 {
		t.Errorf("shards = %d, want 8", mb.NumShards())
	}
	if mb.ChangeHorizon() != 128 {
		t.Errorf("change horizon = %d, want 128", mb.ChangeHorizon())
	}

	if _, err := openBackend("banana", "", 0, 0, false); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestLoadLatticeErrors(t *testing.T) {
	if _, err := loadLattice(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"not":"pairs"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLattice(path); err == nil {
		t.Error("bad lattice JSON accepted")
	}
}

// TestBuildAuth resolves the -auth-* flags into the server trust config.
func TestBuildAuth(t *testing.T) {
	// Open mode: no keyring, anonymous flag invalid without it.
	cfg, err := buildAuth("", false, time.Hour, 24*time.Hour)
	if err != nil || cfg.Require || cfg.Keyring != nil {
		t.Errorf("open mode = %+v, %v", cfg, err)
	}
	if _, err := buildAuth("", true, time.Hour, 24*time.Hour); err == nil {
		t.Error("-auth-anonymous without -auth-keys accepted")
	}

	path := filepath.Join(t.TempDir(), "keyring")
	if err := os.WriteFile(path, []byte("k1:daemon-test-secret-bytes\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	cfg, err = buildAuth(path, true, 2*time.Hour, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Require || !cfg.AnonymousRead || cfg.DefaultTTL != 2*time.Hour {
		t.Errorf("auth config = %+v", cfg)
	}
	if cfg.Keyring == nil || cfg.Keyring.Active() != "k1" {
		t.Errorf("keyring = %+v", cfg.Keyring)
	}

	if _, err := buildAuth(filepath.Join(t.TempDir(), "missing"), false, time.Hour, 24*time.Hour); err == nil {
		t.Error("missing keyring file accepted")
	}
}

// TestBuildAuthTTLBounds: the default TTL cannot exceed the cap.
func TestBuildAuthTTLBounds(t *testing.T) {
	if _, err := buildAuth("", false, 2*time.Hour, time.Hour); err == nil {
		t.Error("-session-ttl above -session-max-ttl accepted")
	}
	cfg, err := buildAuth("", false, time.Hour, 2*time.Hour)
	if err != nil || cfg.MaxTTL != 2*time.Hour {
		t.Errorf("cfg = %+v, %v", cfg, err)
	}
}

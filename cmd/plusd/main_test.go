package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plus"
	"repro/internal/privilege"
)

func TestLoadLatticeDefault(t *testing.T) {
	lat, err := loadLattice("")
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("Protected", privilege.Public) {
		t.Error("default lattice should be two-level")
	}
}

func TestLoadLatticeFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lattice.json")
	if err := os.WriteFile(path, []byte(`[["High-1","Low-2"],["High-2","Low-2"]]`), 0o644); err != nil {
		t.Fatal(err)
	}
	lat, err := loadLattice(path)
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("High-1", "Low-2") || !lat.Incomparable("High-1", "High-2") {
		t.Error("lattice file not honoured")
	}
}

func TestOpenBackendKinds(t *testing.T) {
	logB, err := openBackend("log", filepath.Join(t.TempDir(), "plus.log"), 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer logB.Close()
	if _, ok := logB.(*plus.LogBackend); !ok {
		t.Errorf("log backend = %T", logB)
	}

	memB, err := openBackend("mem", "", 8, 128, false)
	if err != nil {
		t.Fatal(err)
	}
	defer memB.Close()
	mb, ok := memB.(*plus.MemBackend)
	if !ok {
		t.Fatalf("mem backend = %T", memB)
	}
	if mb.NumShards() != 8 {
		t.Errorf("shards = %d, want 8", mb.NumShards())
	}
	if mb.ChangeHorizon() != 128 {
		t.Errorf("change horizon = %d, want 128", mb.ChangeHorizon())
	}

	if _, err := openBackend("banana", "", 0, 0, false); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestLoadLatticeErrors(t *testing.T) {
	if _, err := loadLattice(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"not":"pairs"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLattice(path); err == nil {
		t.Error("bad lattice JSON accepted")
	}
}

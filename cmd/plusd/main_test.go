package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/privilege"
)

func TestLoadLatticeDefault(t *testing.T) {
	lat, err := loadLattice("")
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("Protected", privilege.Public) {
		t.Error("default lattice should be two-level")
	}
}

func TestLoadLatticeFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lattice.json")
	if err := os.WriteFile(path, []byte(`[["High-1","Low-2"],["High-2","Low-2"]]`), 0o644); err != nil {
		t.Fatal(err)
	}
	lat, err := loadLattice(path)
	if err != nil {
		t.Fatal(err)
	}
	if !lat.Dominates("High-1", "Low-2") || !lat.Incomparable("High-1", "High-2") {
		t.Error("lattice file not honoured")
	}
}

func TestLoadLatticeErrors(t *testing.T) {
	if _, err := loadLattice(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"not":"pairs"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLattice(path); err == nil {
		t.Error("bad lattice JSON accepted")
	}
}

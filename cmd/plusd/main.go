// Command plusd serves a PLUS provenance store over HTTP with
// privilege-aware lineage queries.
//
// Usage:
//
//	plusd -db /var/lib/plus.log -addr :7337 [-backend log|mem] [-lattice lattice.json] [-sync]
//
// The -backend flag selects the storage engine: "log" (default) is the
// durable CRC-guarded append-only log at -db; "mem" is the sharded
// in-memory backend for read-heavy serving (contents die with the
// process; -db and -sync are ignored, -shards sets the partition count,
// -change-horizon bounds the per-shard change ring that feeds incremental
// cache and view maintenance).
//
// Caches are delta-scoped: a write evicts only the lineage answers and
// PLUSQL views whose account region it touches; GET /v1/healthz reports
// the cache and delta counters.
//
// Both API versions are served: /v1 (query-string viewer, one record per
// write) and the principal-scoped /v2 (X-Plus-Viewer header or
// POST /v2/sessions tokens, POST /v2/batch atomic ingest, the
// GET /v2/changes durable-cursor change feed with GET /v2/snapshot
// resync, and POST /v2/query). The Go SDK for /v2 is pkg/plusclient;
// plusctl's batch and follow subcommands ride on it. The log backend
// persists its change-feed epoch, so /v2 cursors survive restarts.
//
// The lattice file is a JSON array of [dominator, dominated] predicate
// pairs, e.g. [["High-1","Low-2"],["High-2","Low-2"]]; "Public" is the
// implicit bottom. Without -lattice the server uses the two-level
// Protected/Public lattice.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
)

func loadLattice(path string) (*privilege.Lattice, error) {
	if path == "" {
		return privilege.TwoLevel(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lat, err := privilege.ParseLatticeJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lat, nil
}

// openBackend builds the storage engine the -backend flag selected.
func openBackend(kind, db string, shards, horizon int, sync bool) (plus.Backend, error) {
	switch kind {
	case "log":
		return plus.Open(db, plus.Options{Sync: sync})
	case "mem":
		m := plus.NewMemBackend(shards)
		if horizon > 0 {
			m.SetChangeHorizon(horizon)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want log or mem)", kind)
	}
}

func run() error {
	addr := flag.String("addr", ":7337", "listen address")
	db := flag.String("db", "plus.log", "path to the store log file (log backend)")
	backendKind := flag.String("backend", "log", "storage backend: log (durable) or mem (sharded in-memory)")
	shards := flag.Int("shards", 0, "mem backend shard count (0 = default)")
	horizon := flag.Int("change-horizon", 0, "mem backend per-shard change-ring capacity (0 = default)")
	latticePath := flag.String("lattice", "", "path to a JSON lattice spec (default: two-level)")
	sync := flag.Bool("sync", false, "fsync every append (log backend)")
	cache := flag.Bool("cache", true, "memoise lineage answers until the store changes")
	flag.Parse()

	lat, err := loadLattice(*latticePath)
	if err != nil {
		return err
	}
	backend, err := openBackend(*backendKind, *db, *shards, *horizon, *sync)
	if err != nil {
		return err
	}
	defer backend.Close()

	engine := plus.NewEngine(backend, lat)
	var srv *plus.Server
	if *cache {
		srv = plus.NewCachedServer(plus.NewCachedEngine(engine))
	} else {
		srv = plus.NewServer(engine)
	}
	// PLUSQL declarative queries: POST /v1/query and POST /v2/query.
	plusql.Attach(srv, plusql.NewEngine(backend, lat))
	log.Printf("plusd: serving %s backend on %s (%d objects, %d edges, cache=%v, epoch=%s)",
		*backendKind, *addr, backend.NumObjects(), backend.NumEdges(), *cache, backend.Epoch())
	return http.ListenAndServe(*addr, srv)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plusd:", err)
		os.Exit(1)
	}
}

// Command plusd serves a PLUS provenance store over HTTP with
// privilege-aware lineage queries.
//
// Usage:
//
//	plusd -db /var/lib/plus.log -addr :7337 [-backend log|mem] [-lattice lattice.json] [-sync]
//	      [-auth-keys keyring] [-auth-anonymous] [-session-ttl 1h]
//	      [-slow-query 50ms] [-request-log] [-pprof localhost:6060]
//	      [-tls cert.pem,key.pem | -tls-self-signed DIR] [-tls-ca ca.pem]
//	      [-follow https://primary:7337 [-follow-token T] [-follow-proxy-writes] [-follow-state F]
//	       [-follow-coalesce 100ms]]
//
// The -backend flag selects the storage engine: "log" (default) is the
// durable CRC-guarded append-only log at -db; "mem" is the sharded
// in-memory backend for read-heavy serving (contents die with the
// process; -db and -sync are ignored, -shards sets the partition count,
// -change-horizon bounds the per-shard change ring that feeds incremental
// cache and view maintenance).
//
// Caches are delta-scoped: a write evicts only the lineage answers and
// PLUSQL views whose account region it touches; GET /v1/healthz reports
// the cache and delta counters.
//
// Both API versions are served: /v1 (query-string viewer, one record per
// write) and the principal-scoped /v2 (X-Plus-Viewer header or
// POST /v2/sessions tokens, POST /v2/batch atomic ingest, the
// GET /v2/changes durable-cursor change feed with GET /v2/snapshot
// resync, and POST /v2/query). The Go SDK for /v2 is pkg/plusclient;
// plusctl's batch and follow subcommands ride on it. The log backend
// persists its change-feed epoch, so /v2 cursors survive restarts.
//
// Authentication: -auth-keys loads an HMAC keyring (one "id:secret" line
// per file line, first key signs; see plusctl session mint) and turns on
// required auth — every request must carry a signed stateless session
// token whose capability set (ingest, replicate, query, admin) covers
// the endpoint. Nodes sharing a keyring accept each other's tokens, so a
// fleet needs no session replication. -auth-anonymous additionally keeps
// the legacy read-only surface open: tokenless requests may query (with
// a validated client-asserted viewer) but not ingest, replicate or
// administer. Without -auth-keys the daemon runs in the legacy open mode
// (validated but client-asserted principals, every capability).
//
// Observability: the daemon always keeps a metric registry (HTTP route
// latency, backend op latency, cache and change-feed counters — the
// full catalogue is in the README's Operations section) and serves it
// behind the admin capability at GET /v2/metrics, as Prometheus text
// exposition or JSON with ?format=json (what plusctl top renders).
// -slow-query D captures queries taking ≥ D — with per-phase timings
// and the request's trace ID — in a ring served at GET /v2/slowlog;
// -request-log writes one structured JSON line per request to stderr;
// -pprof ADDR serves net/http/pprof on a side listener that bypasses
// the API's auth (bind it to localhost). SIGHUP reloads -auth-keys in
// place, so keys rotate without dropping a request.
//
// Replication: -follow URL runs the daemon as a read replica of that
// primary (internal/replica documents the mechanics). Boot bootstraps
// the local backend from the primary's snapshot — or, with a durable
// backend and its -follow-state cursor file (default <db>.replica for
// the log backend), resumes exactly where it stopped — then applies the
// primary's change feed continuously, resyncing automatically when the
// cursor falls behind. The privilege lattice is adopted from the
// primary (-lattice is ignored). Every query endpoint serves locally;
// writes answer a structured 403 "read_only", or are forwarded to the
// primary with -follow-proxy-writes. -follow-token carries the
// replication credential (a session with the replicate capability,
// minted from the shared keyring); followers sharing the primary's
// -auth-keys keyring verify client tokens locally. -follow-coalesce D
// turns on group commit: replicated changes buffer up to D before one
// batched local apply, trading that much extra read staleness for far
// fewer cache invalidations under heavy primary ingest. Replication
// state is visible in /v1/healthz ("replica" block), the plus_replica_*
// metrics and `plusctl status`.
//
// TLS: -tls cert.pem,key.pem serves the API over HTTPS; -tls-self-signed
// DIR generates (once) and serves a self-signed pair whose cert.pem
// doubles as the CA bundle clients verify with (plusctl/SDK -tls-ca).
// -tls-ca verifies this daemon's own outbound link to an https -follow
// primary.
//
// The lattice file is a JSON array of [dominator, dominated] predicate
// pairs, e.g. [["High-1","Low-2"],["High-2","Low-2"]]; "Public" is the
// implicit bottom. Without -lattice the server uses the two-level
// Protected/Public lattice.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/plus"
	"repro/internal/plusql"
	"repro/internal/privilege"
	"repro/internal/replica"
	"repro/pkg/plusclient"
)

// buildAuth resolves the -auth-* flags into the server's trust
// configuration.
func buildAuth(keysPath string, anonymous bool, sessionTTL, maxTTL time.Duration) (plus.AuthConfig, error) {
	if sessionTTL > maxTTL {
		return plus.AuthConfig{}, fmt.Errorf("-session-ttl %s exceeds -session-max-ttl %s", sessionTTL, maxTTL)
	}
	if keysPath == "" {
		if anonymous {
			return plus.AuthConfig{}, fmt.Errorf("-auth-anonymous requires -auth-keys")
		}
		return plus.AuthConfig{DefaultTTL: sessionTTL, MaxTTL: maxTTL}, nil
	}
	kr, err := plus.LoadKeyring(keysPath)
	if err != nil {
		return plus.AuthConfig{}, err
	}
	return plus.AuthConfig{
		Keyring:       kr,
		Require:       true,
		AnonymousRead: anonymous,
		DefaultTTL:    sessionTTL,
		MaxTTL:        maxTTL,
	}, nil
}

func loadLattice(path string) (*privilege.Lattice, error) {
	if path == "" {
		return privilege.TwoLevel(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lat, err := privilege.ParseLatticeJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lat, nil
}

// splitTLSPair parses the -tls flag's "cert.pem,key.pem".
func splitTLSPair(s string) (cert, key string, err error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
		return "", "", fmt.Errorf(`-tls wants "cert.pem,key.pem", got %q`, s)
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), nil
}

// listenAndServe starts the API listener, plain or under TLS depending
// on the -tls/-tls-self-signed flags.
func listenAndServe(addr string, h http.Handler, tlsPair, tlsSelfDir string) error {
	switch {
	case tlsPair != "" && tlsSelfDir != "":
		return fmt.Errorf("-tls and -tls-self-signed are mutually exclusive")
	case tlsPair != "":
		cert, key, err := splitTLSPair(tlsPair)
		if err != nil {
			return err
		}
		return http.ListenAndServeTLS(addr, cert, key, h)
	case tlsSelfDir != "":
		cert, key, err := plus.WriteSelfSignedCert(tlsSelfDir)
		if err != nil {
			return err
		}
		log.Printf("plusd: serving TLS with self-signed %s (hand it to clients as -tls-ca)", cert)
		return http.ListenAndServeTLS(addr, cert, key, h)
	default:
		return http.ListenAndServe(addr, h)
	}
}

// openBackend builds the storage engine the -backend flag selected.
func openBackend(kind, db string, shards, horizon int, sync bool) (plus.Backend, error) {
	switch kind {
	case "log":
		return plus.Open(db, plus.Options{Sync: sync})
	case "mem":
		m := plus.NewMemBackend(shards)
		if horizon > 0 {
			m.SetChangeHorizon(horizon)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("unknown backend %q (want log or mem)", kind)
	}
}

func run() error {
	addr := flag.String("addr", ":7337", "listen address")
	db := flag.String("db", "plus.log", "path to the store log file (log backend)")
	backendKind := flag.String("backend", "log", "storage backend: log (durable) or mem (sharded in-memory)")
	shards := flag.Int("shards", 0, "mem backend shard count (0 = default)")
	horizon := flag.Int("change-horizon", 0, "mem backend per-shard change-ring capacity (0 = default)")
	latticePath := flag.String("lattice", "", "path to a JSON lattice spec (default: two-level)")
	sync := flag.Bool("sync", false, "fsync every append (log backend)")
	cache := flag.Bool("cache", true, "memoise lineage answers until the store changes")
	authKeys := flag.String("auth-keys", "", "HMAC keyring file; requires signed session tokens on every request")
	authAnon := flag.Bool("auth-anonymous", false, "with -auth-keys: keep the legacy read-only (query) surface open to tokenless requests")
	sessionTTL := flag.Duration("session-ttl", plus.DefaultSessionTTL, "default lifetime of tokens minted by POST /v2/sessions")
	maxTTL := flag.Duration("session-max-ttl", plus.DefaultMaxTTL, "cap on requested session lifetimes")
	slowQuery := flag.Duration("slow-query", 0, "record lineage/PLUSQL queries at or above this duration in GET /v2/slowlog (0 = off)")
	slowLogSize := flag.Int("slow-query-log-size", 128, "slow-query ring capacity")
	requestLog := flag.Bool("request-log", false, "write a structured (JSON) log line per request to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = off)")
	follow := flag.String("follow", "", "run as a read replica of this primary base URL")
	followToken := flag.String("follow-token", "", "session token for the primary link (needs the replicate capability)")
	followProxy := flag.Bool("follow-proxy-writes", false, "forward writes to the primary instead of answering 403 read_only")
	followState := flag.String("follow-state", "", "replication cursor file (default <db>.replica for the log backend)")
	followCoalesce := flag.Duration("follow-coalesce", 0, "group-commit window for applying replicated changes: trade up to this much extra read staleness for batched applies (0 = apply per sync)")
	tlsPair := flag.String("tls", "", `serve HTTPS with this "cert.pem,key.pem" pair`)
	tlsSelf := flag.String("tls-self-signed", "", "generate (once) a self-signed cert/key pair in this directory and serve HTTPS with it")
	tlsCA := flag.String("tls-ca", "", "PEM CA bundle verifying the outbound https -follow link")
	flag.Parse()

	auth, err := buildAuth(*authKeys, *authAnon, *sessionTTL, *maxTTL)
	if err != nil {
		return err
	}
	backend, err := openBackend(*backendKind, *db, *shards, *horizon, *sync)
	if err != nil {
		return err
	}
	defer backend.Close()

	// Observability: the metric registry is always on (exposed behind
	// the admin capability at GET /v2/metrics), the slow-query ring and
	// request log are opt-in.
	reg := obs.NewRegistry()
	var slow *obs.SlowLog
	if *slowQuery > 0 {
		slow = obs.NewSlowLog(*slowLogSize, *slowQuery)
	}
	var reqLogger *slog.Logger
	if *requestLog {
		reqLogger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	telemetry := plus.NewObservability(reg, slow, reqLogger)
	observed := plus.NewObserveBackend(backend, reg)

	// Follower mode: bootstrap (or resume) the local store from the
	// primary before any engine sees it, and adopt the primary's
	// lattice so protection decisions agree across the fleet.
	var lat *privilege.Lattice
	var rep *replica.Replica
	var extraOpts []plus.ServerOption
	if *follow != "" {
		if *latticePath != "" {
			log.Printf("plusd: -lattice ignored in follower mode (lattice adopted from the primary)")
		}
		statePath := *followState
		if statePath == "" && *backendKind == "log" {
			statePath = replica.DefaultStatePath(*db)
		}
		rep, err = replica.New(replica.Config{
			Primary:   *follow,
			Token:     *followToken,
			CAFile:    *tlsCA,
			Backend:   observed,
			StatePath: statePath,
			Coalesce:  *followCoalesce,
			Logf:      log.Printf,
		})
		if err != nil {
			return err
		}
		if err := rep.Start(context.Background()); err != nil {
			return err
		}
		lat = rep.Lattice()
		rep.RegisterMetrics(reg)
		extraOpts = append(extraOpts, plus.WithReplicaHealth(rep.Health))
		if *followProxy {
			var phc *http.Client
			if *tlsCA != "" {
				if phc, err = plusclient.NewTLSHTTPClient(*tlsCA); err != nil {
					return err
				}
			}
			proxy, perr := replica.WriteProxy(*follow, phc)
			if perr != nil {
				return perr
			}
			extraOpts = append(extraOpts, plus.WithReadOnly(proxy))
		} else {
			extraOpts = append(extraOpts, plus.WithReadOnly(nil))
		}
	} else {
		if lat, err = loadLattice(*latticePath); err != nil {
			return err
		}
	}

	engine := plus.NewEngine(observed, lat)
	opts := append([]plus.ServerOption{plus.WithAuth(auth), plus.WithObservability(telemetry)}, extraOpts...)
	var srv *plus.Server
	if *cache {
		srv = plus.NewCachedServer(plus.NewCachedEngine(engine), opts...)
	} else {
		srv = plus.NewServer(engine, opts...)
	}
	// PLUSQL declarative queries: POST /v1/query and POST /v2/query.
	plusql.Attach(srv, plusql.NewEngine(observed, lat))

	// The apply loop runs for the life of the process: it keeps serving
	// the last applied state and retrying through primary outages, so
	// only divergence (unrecoverable by definition) stops it.
	if rep != nil {
		go func() {
			if err := rep.Run(context.Background()); err != nil {
				log.Printf("plusd: replication stopped: %v", err)
			}
		}()
	}

	// SIGHUP swaps the keyring in place (key rotation without dropping
	// a request); meaningless without -auth-keys.
	if *authKeys != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if err := srv.ReloadKeyringFromFile(*authKeys); err != nil {
					log.Printf("plusd: SIGHUP keyring reload failed (keeping current keys): %v", err)
					continue
				}
				log.Printf("plusd: SIGHUP reloaded keyring %s (keys %v)", *authKeys, srv.Keyring().KeyIDs())
			}
		}()
	}

	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("plusd: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				log.Printf("plusd: pprof listener: %v", err)
			}
		}()
	}

	mode := "open (no authentication)"
	switch {
	case auth.Require && auth.AnonymousRead:
		mode = fmt.Sprintf("authenticated (keys %v, anonymous read-only allowed)", auth.Keyring.KeyIDs())
	case auth.Require:
		mode = fmt.Sprintf("authenticated (keys %v)", auth.Keyring.KeyIDs())
	}
	role := "primary"
	if rep != nil {
		role = fmt.Sprintf("follower of %s", *follow)
	}
	log.Printf("plusd: serving %s backend on %s as %s (%d objects, %d edges, cache=%v, epoch=%s, auth=%s)",
		*backendKind, *addr, role, backend.NumObjects(), backend.NumEdges(), *cache, backend.Epoch(), mode)
	return listenAndServe(*addr, srv, *tlsPair, *tlsSelf)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plusd:", err)
		os.Exit(1)
	}
}

// Command plusd serves a PLUS provenance store over HTTP with
// privilege-aware lineage queries.
//
// Usage:
//
//	plusd -db /var/lib/plus.log -addr :7337 [-lattice lattice.json] [-sync]
//
// The lattice file is a JSON array of [dominator, dominated] predicate
// pairs, e.g. [["High-1","Low-2"],["High-2","Low-2"]]; "Public" is the
// implicit bottom. Without -lattice the server uses the two-level
// Protected/Public lattice.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/plus"
	"repro/internal/privilege"
)

func loadLattice(path string) (*privilege.Lattice, error) {
	if path == "" {
		return privilege.TwoLevel(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lat, err := privilege.ParseLatticeJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lat, nil
}

func run() error {
	addr := flag.String("addr", ":7337", "listen address")
	db := flag.String("db", "plus.log", "path to the store log file")
	latticePath := flag.String("lattice", "", "path to a JSON lattice spec (default: two-level)")
	sync := flag.Bool("sync", false, "fsync every append")
	cache := flag.Bool("cache", true, "memoise lineage answers until the store changes")
	flag.Parse()

	lat, err := loadLattice(*latticePath)
	if err != nil {
		return err
	}
	store, err := plus.Open(*db, plus.Options{Sync: *sync})
	if err != nil {
		return err
	}
	defer store.Close()

	engine := plus.NewEngine(store, lat)
	var srv *plus.Server
	if *cache {
		srv = plus.NewCachedServer(plus.NewCachedEngine(engine))
	} else {
		srv = plus.NewServer(engine)
	}
	log.Printf("plusd: serving %s on %s (%d objects, %d edges, cache=%v)",
		*db, *addr, store.NumObjects(), store.NumEdges(), *cache)
	return http.ListenAndServe(*addr, srv)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "plusd:", err)
		os.Exit(1)
	}
}

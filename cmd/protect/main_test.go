package main

import (
	"net/http/httptest"

	"bytes"
	"encoding/json"
	"os"
	"repro/internal/plus"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/privilege"
)

func fixtureSpec(t *testing.T) *core.SpecFile {
	t.Helper()
	raw := `{
	  "lattice": [["High-1","Low-2"], ["High-2","Low-2"], ["Low-2","Public"]],
	  "nodes": [
	    {"id":"c", "features":{"name":"associate"}},
	    {"id":"f", "lowest":"High-1", "protect":"surrogate",
	     "features":{"name":"gang affiliation"}},
	    {"id":"g", "features":{"name":"suspect"}}
	  ],
	  "edges": [
	    {"from":"c","to":"f","label":"involved-in"},
	    {"from":"f","to":"g","label":"involves"}
	  ],
	  "surrogates": [
	    {"for":"f","id":"f'","lowest":"Low-2","infoScore":0.5,
	     "features":{"name":"a trusted source"}}
	  ]
	}`
	var sf core.SpecFile
	if err := json.Unmarshal([]byte(raw), &sf); err != nil {
		t.Fatal(err)
	}
	return &sf
}

func TestBuildSpecAndProtect(t *testing.T) {
	spec, err := fixtureSpec(t).BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Protect(spec, "High-2", core.Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.HasNode("f") {
		t.Error("sensitive node leaked")
	}
	if !res.Account.Graph.HasEdge("c", "g") {
		t.Errorf("expected surrogate edge c->g: %v", res.Account.Graph.Edges())
	}
	// f has a surrogate but its role is hidden, so f' floats (Figure 2d).
	if !res.Account.Graph.HasNode("f'") {
		t.Errorf("surrogate node missing: %v", res.Account.Graph.Nodes())
	}
}

func TestBuildSpecEdgeProtection(t *testing.T) {
	sf := fixtureSpec(t)
	sf.Nodes[1].Protect = "" // keep f visible-incidence
	sf.Edges[0].ProtectAt = "High-1"
	sf.Edges[0].ProtectMode = "hide"
	spec, err := sf.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Protect(spec, "High-2", core.Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Account.Graph.HasEdge("c", "f'") {
		t.Error("hidden edge leaked onto the surrogate")
	}
}

func TestBuildSpecErrors(t *testing.T) {
	sf := fixtureSpec(t)
	sf.Nodes[1].Protect = "banana"
	if _, err := sf.BuildSpec(); err == nil {
		t.Error("bad node protect mode accepted")
	}

	sf = fixtureSpec(t)
	sf.Edges[0].ProtectAt = "Low-2"
	sf.Edges[0].ProtectMode = "banana"
	if _, err := sf.BuildSpec(); err == nil {
		t.Error("bad edge protect mode accepted")
	}

	sf = fixtureSpec(t)
	sf.Lattice = append(sf.Lattice, [2]string{"Low-2", "High-1"}) // cycle
	if _, err := sf.BuildSpec(); err == nil {
		t.Error("cyclic lattice accepted")
	}

	sf = fixtureSpec(t)
	sf.Edges = append(sf.Edges, core.SpecFileEdge{From: "c", To: "nope"})
	if _, err := sf.BuildSpec(); err == nil {
		t.Error("dangling edge accepted")
	}
}

func writeFixtureFile(t *testing.T) string {
	t.Helper()
	sf := fixtureSpec(t)
	data, err := json.Marshal(sf)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/spec.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFormats(t *testing.T) {
	path := writeFixtureFile(t)
	cases := []struct {
		format string
		want   []string
	}{
		{"table", []string{"protected account for viewer High-2", "[surrogate]", "path utility"}},
		{"json", []string{`"viewer": "High-2"`, `"pathUtility"`, `"graphOpacity"`}},
		{"dot", []string{`digraph "protected"`, `style="dashed"`}},
		{"report", []string{"utility:", "opacity="}},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := run([]string{"-spec", path, "-viewer", "High-2", "-format", c.format}, &out)
		if err != nil {
			t.Fatalf("%s: %v", c.format, err)
		}
		for _, want := range c.want {
			if !strings.Contains(out.String(), want) {
				t.Errorf("%s output missing %q:\n%s", c.format, want, out.String())
			}
		}
	}
}

func TestRunHighWaterSetViewer(t *testing.T) {
	path := writeFixtureFile(t)
	var out bytes.Buffer
	if err := run([]string{"-spec", path, "-viewer", "High-1, High-2", "-format", "table"}, &out); err != nil {
		t.Fatal(err)
	}
	// A viewer holding High-1 sees f itself.
	if !strings.Contains(out.String(), "node f\n") {
		t.Errorf("HW-set viewer should see f:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	path := writeFixtureFile(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -spec accepted")
	}
	if err := run([]string{"-spec", path + ".missing"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-spec", path, "-mode", "banana"}, &out); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run([]string{"-spec", path, "-format", "banana"}, &out); err == nil {
		t.Error("bad format accepted")
	}
	bad := t.TempDir() + "/bad.json"
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", bad}, &out); err == nil {
		t.Error("bad JSON accepted")
	}
	if err := run([]string{"-spec", path, "-viewer", "Bogus"}, &out); err == nil {
		t.Error("hidden-content soundness failure or unknown predicate should error")
	}
}

func TestBuildSpecDefaultSurrogateLowest(t *testing.T) {
	sf := fixtureSpec(t)
	sf.Surrogates[0].Lowest = "" // should default to Public
	spec, err := sf.BuildSpec()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Protect(spec, privilege.Public, core.Surrogate)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Account.Graph.HasNode("f'") {
		t.Error("public-default surrogate not visible to Public")
	}
}

// remoteFixtureServer serves the Figure 1 graph from a live plusd-style
// server so the -server mode can be driven end to end through the SDK.
func remoteFixtureServer(t *testing.T) string {
	t.Helper()
	backend := plus.NewMemBackend(2)
	t.Cleanup(func() { backend.Close() })
	srv := httptest.NewServer(plus.NewServer(plus.NewEngine(backend, privilege.FigureOneLattice())))
	t.Cleanup(srv.Close)
	_, err := backend.Apply(plus.Batch{
		Objects: []plus.Object{
			{ID: "c", Kind: plus.Data, Name: "associate"},
			{ID: "f", Kind: plus.Data, Name: "gang affiliation", Lowest: "High-1", Protect: "surrogate"},
			{ID: "g", Kind: plus.Data, Name: "suspect"},
		},
		Edges: []plus.Edge{
			{From: "c", To: "f", Label: "involved-in"},
			{From: "f", To: "g", Label: "involves"},
		},
		Surrogates: []plus.SurrogateSpec{
			{ForID: "f", ID: "f'", Name: "a trusted source", Lowest: "Low-2", InfoScore: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv.URL
}

// TestRunProtectRemote pulls the graph from a live server through the v2
// SDK and expects the same protection pipeline as the spec-file path.
func TestRunProtectRemote(t *testing.T) {
	url := remoteFixtureServer(t)
	var out bytes.Buffer
	if err := run([]string{"-server", url, "-viewer", "High-2", "-format", "table"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "node f'") {
		t.Errorf("surrogate node missing:\n%s", s)
	}
	if strings.Contains(s, "node f\n") {
		t.Errorf("sensitive node leaked:\n%s", s)
	}
	if !strings.Contains(s, "edge c -> g") {
		t.Errorf("surrogate edge missing:\n%s", s)
	}

	// Spec and server are mutually exclusive; one of them is required.
	if err := run([]string{"-server", url, "-spec", "x.json"}, &out); err == nil {
		t.Error("-spec with -server accepted")
	}
	if err := run([]string{"-viewer", "High-2"}, &out); err == nil {
		t.Error("neither -spec nor -server rejected... accepted")
	}
	// A dead server is a transport error, not a silent empty graph.
	if err := run([]string{"-server", "http://127.0.0.1:1", "-viewer", "High-2"}, &out); err == nil {
		t.Error("unreachable server accepted")
	}
}

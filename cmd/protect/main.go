// Command protect transforms a sensitive graph described by a JSON spec
// file into a protected account for a given consumer privilege, printing
// the resulting graph and its utility/opacity measures.
//
// Usage:
//
//	protect -spec graph.json -viewer High-2 [-mode surrogate|hide] [-format table|json|dot|report]
//	protect -server http://localhost:7337 -viewer High-2 [...]
//
// The graph comes from a local JSON spec file (-spec) or from a live
// plusd server (-server): the remote mode pulls the server's full
// snapshot and privilege lattice through the v2 SDK (pkg/plusclient) and
// rebuilds the provider-side spec locally, so stored provenance can be
// analysed with exactly the same pipeline as spec files. Against an
// auth-required plusd, pass -token with a session token holding the
// replicate capability (mint one with plusctl session mint).
//
// The viewer may be a comma-separated list of predicates, forming a
// high-water set for consumers holding several incomparable privileges.
//
// Spec file format (core.SpecFile):
//
//	{
//	  "lattice":    [["High-1","Low-2"], ["High-2","Low-2"], ["Low-2","Public"]],
//	  "nodes":      [{"id":"f", "lowest":"High-1", "protect":"surrogate",
//	                  "features":{"name":"secret informant"}}, ...],
//	  "edges":      [{"from":"c","to":"f","label":"knows",
//	                  "protectAt":"High-2","protectMode":"surrogate"}, ...],
//	  "surrogates": [{"for":"f","id":"f'","lowest":"Low-2","infoScore":0.5,
//	                  "features":{"name":"a trusted source"}}, ...]
//	}
//
// Lattice pairs are [dominator, dominated]; "Public" is implicit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/privilege"
)

type output struct {
	Viewer       string          `json:"viewer"`
	Mode         string          `json:"mode"`
	Graph        json.RawMessage `json:"graph"`
	PathUtility  float64         `json:"pathUtility"`
	NodeUtility  float64         `json:"nodeUtility"`
	GraphOpacity float64         `json:"graphOpacity"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("protect", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the JSON graph spec")
	server := fs.String("server", "", "plusd base URL to pull the graph from instead of -spec")
	token := fs.String("token", "", "signed session token for -server (needs the replicate capability)")
	viewer := fs.String("viewer", "Public", "consumer privilege-predicate(s), comma-separated for a high-water set")
	modeName := fs.String("mode", "surrogate", "protection strategy: surrogate or hide")
	format := fs.String("format", "table", "output format: table, json, dot or report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := core.LoadSpecSource(context.Background(), *specPath, *server, *token)
	if err != nil {
		return err
	}
	var mode core.Mode
	switch *modeName {
	case "surrogate":
		mode = core.Surrogate
	case "hide":
		mode = core.Hide
	default:
		return fmt.Errorf("unknown -mode %q", *modeName)
	}
	var viewers []privilege.Predicate
	for _, v := range strings.Split(*viewer, ",") {
		if v = strings.TrimSpace(v); v != "" {
			viewers = append(viewers, privilege.Predicate(v))
		}
	}
	res, err := core.ProtectSet(spec, viewers, mode)
	if err != nil {
		return err
	}

	switch *format {
	case "dot":
		fmt.Fprint(stdout, res.Account.DOT("protected"))
	case "report":
		fmt.Fprint(stdout, measure.NewReport(spec, res.Account, measure.Figure5()))
	case "json":
		gj, err := json.Marshal(res.Account.Graph)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(output{
			Viewer:       *viewer,
			Mode:         mode.String(),
			Graph:        gj,
			PathUtility:  res.Utility.Path,
			NodeUtility:  res.Utility.Node,
			GraphOpacity: res.GraphOpacity,
		})
	case "table":
		fmt.Fprintf(stdout, "protected account for viewer %s (mode %s)\n", *viewer, mode)
		fmt.Fprintf(stdout, "  nodes: %d (of %d), edges: %d (%d surrogate)\n",
			res.Account.Graph.NumNodes(), spec.Graph.NumNodes(),
			res.Account.Graph.NumEdges(), len(res.Account.SurrogateEdges))
		for _, id := range res.Account.Graph.Nodes() {
			marker := ""
			if _, ok := res.Account.SurrogateNodes[id]; ok {
				marker = "  [surrogate]"
			}
			fmt.Fprintf(stdout, "  node %s%s\n", id, marker)
		}
		for _, e := range res.Account.Graph.Edges() {
			marker := ""
			if res.Account.SurrogateEdges[e.ID()] {
				marker = "  [surrogate]"
			}
			fmt.Fprintf(stdout, "  edge %s -> %s%s\n", e.From, e.To, marker)
		}
		fmt.Fprintf(stdout, "  path utility:  %.3f\n", res.Utility.Path)
		fmt.Fprintf(stdout, "  node utility:  %.3f\n", res.Utility.Node)
		fmt.Fprintf(stdout, "  graph opacity: %.3f (advanced adversary, Fig 5)\n", res.GraphOpacity)
	default:
		return fmt.Errorf("unknown -format %q", *format)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "protect:", err)
		os.Exit(1)
	}
}

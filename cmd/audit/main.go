// Command audit analyses the composition risk of releasing protected
// accounts of one graph to several consumer classes: it generates the
// account for each viewer, unions what an attacker holding all of them
// would see, and reports per-edge opacity degradation and the pairs
// revealed only by composition.
//
// Usage:
//
//	audit -spec graph.json -viewers High-1,High-2 [-edges f->g,c->f]
//	audit -server http://localhost:7337 -viewers High-1,High-2 [...]
//
// The spec file format is the same as cmd/protect's (core.SpecFile); with
// -server the graph and lattice are pulled from a live plusd server
// through the v2 SDK (pkg/plusclient) instead (-token authenticates the
// pull against an auth-required plusd; the token needs the replicate
// capability). With no -edges the audit scores every edge of the
// original graph.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/account"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/privilege"
)

func parseEdges(s string) ([]graph.EdgeID, error) {
	if s == "" {
		return nil, nil
	}
	var out []graph.EdgeID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		ends := strings.Split(part, "->")
		if len(ends) != 2 || ends[0] == "" || ends[1] == "" {
			return nil, fmt.Errorf("bad edge %q (want from->to)", part)
		}
		out = append(out, graph.EdgeID{
			From: graph.NodeID(strings.TrimSpace(ends[0])),
			To:   graph.NodeID(strings.TrimSpace(ends[1])),
		})
	}
	return out, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to the JSON graph spec")
	server := fs.String("server", "", "plusd base URL to pull the graph from instead of -spec")
	token := fs.String("token", "", "signed session token for -server (needs the replicate capability)")
	viewersFlag := fs.String("viewers", "", "comma-separated consumer predicates whose accounts are released (required)")
	edgesFlag := fs.String("edges", "", "comma-separated sensitive edges to score (from->to); default all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *viewersFlag == "" {
		return fmt.Errorf("missing -viewers (run with -h for usage)")
	}
	spec, err := core.LoadSpecSource(context.Background(), *specPath, *server, *token)
	if err != nil {
		return err
	}

	var viewers []privilege.Predicate
	for _, v := range strings.Split(*viewersFlag, ",") {
		if v = strings.TrimSpace(v); v != "" {
			viewers = append(viewers, privilege.Predicate(v))
		}
	}
	if len(viewers) < 2 {
		return fmt.Errorf("need at least two viewers to audit composition")
	}
	var accounts []*account.Account
	for _, v := range viewers {
		a, err := account.Generate(spec, v)
		if err != nil {
			return fmt.Errorf("account for %s: %w", v, err)
		}
		accounts = append(accounts, a)
	}

	edges, err := parseEdges(*edgesFlag)
	if err != nil {
		return err
	}
	if edges == nil {
		for _, e := range spec.Graph.Edges() {
			edges = append(edges, e.ID())
		}
	}
	for _, e := range edges {
		if _, ok := spec.Graph.EdgeByID(e); !ok {
			return fmt.Errorf("edge %s not in the graph", e)
		}
	}

	report, err := audit.Report(spec, viewers, accounts, edges, measure.Figure5())
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, report)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "audit:", err)
		os.Exit(1)
	}
}

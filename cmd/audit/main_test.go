package main

import (
	"net/http/httptest"

	"bytes"
	"os"
	"repro/internal/plus"
	"repro/internal/privilege"
	"strings"
	"testing"
)

func writeSpec(t *testing.T) string {
	t.Helper()
	raw := `{
	  "lattice": [["High-1","Low-2"], ["High-2","Low-2"], ["Low-2","Public"]],
	  "nodes": [
	    {"id":"pub"},
	    {"id":"f", "lowest":"High-1"},
	    {"id":"g", "lowest":"High-2"}
	  ],
	  "edges": [
	    {"from":"pub","to":"f"},
	    {"from":"pub","to":"g"},
	    {"from":"f","to":"g","protectAt":"High-1","protectMode":"hide"}
	  ]
	}`
	path := t.TempDir() + "/spec.json"
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAudit(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	err := run([]string{"-spec", path, "-viewers", "High-1,High-2", "-edges", "f->g"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"composition audit over 2 accounts", "edge f->g", "degradation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunAuditAllEdges(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	if err := run([]string{"-spec", path, "-viewers", "High-1, High-2"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "edge ") != 3 {
		t.Errorf("expected all 3 edges scored:\n%s", out.String())
	}
}

func TestRunAuditErrors(t *testing.T) {
	path := writeSpec(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-spec", path, "-viewers", "High-1"}, &out); err == nil {
		t.Error("single viewer accepted")
	}
	if err := run([]string{"-spec", path, "-viewers", "High-1,High-2", "-edges", "bogus"}, &out); err == nil {
		t.Error("malformed edge accepted")
	}
	if err := run([]string{"-spec", path, "-viewers", "High-1,High-2", "-edges", "f->zz"}, &out); err == nil {
		t.Error("unknown edge accepted")
	}
	if err := run([]string{"-spec", path + ".missing", "-viewers", "High-1,High-2"}, &out); err == nil {
		t.Error("missing spec accepted")
	}
	if err := run([]string{"-spec", path, "-viewers", "Bogus,High-2"}, &out); err == nil {
		t.Error("unknown viewer accepted")
	}
}

func TestParseEdges(t *testing.T) {
	edges, err := parseEdges("a->b, c->d")
	if err != nil || len(edges) != 2 || edges[1].From != "c" {
		t.Errorf("parseEdges = %v, %v", edges, err)
	}
	if got, err := parseEdges(""); got != nil || err != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	if _, err := parseEdges("->b"); err == nil {
		t.Error("empty endpoint accepted")
	}
}

// TestRunAuditRemote pulls the graph from a live server through the v2
// SDK and audits account composition exactly like the spec-file path.
func TestRunAuditRemote(t *testing.T) {
	backend := plus.NewMemBackend(2)
	t.Cleanup(func() { backend.Close() })
	srv := httptest.NewServer(plus.NewServer(plus.NewEngine(backend, privilege.FigureOneLattice())))
	t.Cleanup(srv.Close)
	_, err := backend.Apply(plus.Batch{
		Objects: []plus.Object{
			{ID: "pub", Kind: plus.Data, Name: "public record"},
			{ID: "f", Kind: plus.Data, Name: "informant", Lowest: "High-1"},
			{ID: "g", Kind: plus.Data, Name: "suspect", Lowest: "High-2"},
		},
		Edges: []plus.Edge{
			{From: "pub", To: "f"},
			{From: "pub", To: "g"},
			{From: "f", To: "g", Lowest: "High-1", Marking: "hide"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-server", srv.URL, "-viewers", "High-1,High-2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "f->g") {
		t.Errorf("audit report missing the sensitive edge:\n%s", out.String())
	}

	if err := run([]string{"-server", srv.URL, "-spec", "x.json", "-viewers", "High-1,High-2"}, &out); err == nil {
		t.Error("-spec with -server accepted")
	}
	if err := run([]string{"-viewers", "High-1,High-2"}, &out); err == nil {
		t.Error("neither -spec nor -server accepted")
	}
}
